"""Named counters and histograms for the study's hot paths.

One :class:`MetricsRegistry` is shared by everything a run instruments —
databases, the whois service, the scenario builder, the serving stack —
so a single snapshot answers "how many lookups, how many misses, what
resolutions came back".  Metric names are dotted, ``family.event``
(``geodb.lookups``, ``whois.queries``, ``serve.requests``); the part
before the first dot is the metric's *family*, the unit the run manifest
groups by.  Optional labels (``database="NetAcuity"``,
``endpoint="lookup"``) split a name into a family of series.

Three recording surfaces, ordered by hot-path cost:

* :meth:`MetricsRegistry.inc` / :meth:`~MetricsRegistry.observe` — the
  general path: key construction + one registry-lock acquisition per
  call.  Histograms are log-bucketed (:class:`~repro.obs.quantiles.\
BucketHistogram`), so every series can answer p50/p99 without changing
  the manifest's summary shape.
* :meth:`MetricsRegistry.cell` — a pre-resolved :class:`CounterCell` for
  per-lookup hot paths (the serving engine's plane path): one locked
  integer add, no key construction, and one cell may feed *several*
  counters at once (``serve.lookups`` + ``plane.hits`` cost a single
  add).  Cell values merge into every read path, so callers cannot tell
  how a counter was fed.
* :meth:`MetricsRegistry.track_window` — attach a
  :class:`~repro.obs.window.RollingWindow` to a counter name (optionally
  filtered by labels); matching :meth:`inc` calls also land in the
  window, giving ``/statusz`` rates over the last 10s/60s instead of
  lifetime totals only.

Instrumented objects hold ``metrics = None`` by default and skip all of
this with one ``is not None`` test, keeping the uninstrumented hot path
identical to the pre-observability code.

Thread-safety: every write and every read path takes (or copies under)
``_lock`` — the serving layer increments from HTTP handler threads and
batch-executor threads while ``/statusz`` and ``/metricsz`` scrape, and
a snapshot taken mid-insert must never see the dicts resize under it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping, Sequence

from repro.obs.quantiles import BucketHistogram, Histogram
from repro.obs.window import RollingWindow

__all__ = ["CounterCell", "Histogram", "MetricsRegistry"]

_LabelKey = tuple[tuple[str, str], ...]


def _series_name(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class CounterCell:
    """A pre-resolved counter slot: one locked add, no key building.

    The serving engine's plane path answers in ~1 µs; going through
    :meth:`MetricsRegistry.inc` twice per lookup (key tuple + registry
    lock each time) costs more than the lookup itself.  A cell is
    resolved once at attach time and registered under every counter name
    it feeds, so the hot path pays exactly one uncontended lock and one
    integer add — and the counts stay *exact* (the fault-injection
    hammer tests reconcile them to the request totals).
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def add(self, value: int = 1) -> None:
        """Add ``value`` to every counter this cell was registered under."""
        with self._lock:
            self.value += value


class _WindowTracker:
    """One rolling window bound to a counter name + label filter."""

    __slots__ = ("alias", "name", "label_filter", "window")

    def __init__(
        self, alias: str, name: str, label_filter: _LabelKey, window: RollingWindow
    ):
        self.alias = alias
        self.name = name
        self.label_filter = frozenset(label_filter)
        self.window = window

    def matches(self, labels: _LabelKey) -> bool:
        return not self.label_filter or self.label_filter <= set(labels)


class MetricsRegistry:
    """Process-wide named counters and histograms.

    Typical use: the CLI (or a test) creates one registry per run and
    attaches it to every instrumented object; the registry outlives them
    all and is snapshotted into the run manifest.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], int] = {}
        self._histograms: dict[tuple[str, _LabelKey], BucketHistogram] = {}
        self._cells: dict[tuple[str, _LabelKey], list[CounterCell]] = {}
        self._gauges: dict[tuple[str, _LabelKey], Callable[[], float]] = {}
        self._window_index: dict[str, list[_WindowTracker]] = {}
        self._window_aliases: dict[str, _WindowTracker] = {}
        # The serving layer increments from HTTP handler threads and
        # batch-executor threads concurrently; a read-modify-write on a
        # plain dict would drop counts under that load (the cache-hammer
        # test reconciles hits+misses against request totals exactly).
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: Mapping[str, Any]) -> tuple[str, _LabelKey]:
        if not labels:
            return name, ()
        return name, tuple(sorted((key, str(value)) for key, value in labels.items()))

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        """Add ``value`` to the counter series ``name`` + ``labels``."""
        key = self._key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value
        trackers = self._window_index.get(name)
        if trackers:
            for tracker in trackers:
                if tracker.matches(key[1]):
                    tracker.window.add(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram ``name`` + ``labels``."""
        key = self._key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = BucketHistogram()
            histogram.observe(value)

    def observe_many(self, name: str, value: float, count: int, **labels: Any) -> None:
        """Record ``count`` identical observations in one O(1) update."""
        if count <= 0:
            return
        key = self._key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = BucketHistogram()
            histogram.observe_many(value, count)

    def cell(self, *names: str, **labels: Any) -> CounterCell:
        """A new :class:`CounterCell` feeding every counter in ``names``.

        Each ``cell.add()`` contributes to all of them at once — the
        hot-path pattern is one cell for ``("serve.lookups",
        "plane.hits")`` so a plane hit costs a single locked add.  Cells
        deliberately bypass window tracking: windowed series are fed by
        request-level :meth:`inc` calls, never per-lookup cells.
        """
        if not names:
            raise ValueError("a counter cell needs at least one counter name")
        cell = CounterCell()
        with self._lock:
            for name in names:
                key = self._key(name, labels)
                self._cells.setdefault(key, []).append(cell)
        return cell

    # -- gauges --------------------------------------------------------------

    def register_gauge(
        self, name: str, callback: Callable[[], float], **labels: Any
    ) -> None:
        """Register a *callback* gauge: the current value is read at
        scrape time, never stored.

        The natural fit for point-in-time state someone else owns — the
        serving generation id, its age in seconds — where a counter-style
        write per change would either miss updates or duplicate the
        owner's bookkeeping.  Re-registering a (name, labels) series
        replaces the callback (the latest owner wins, e.g. after an
        engine restart behind the same registry).
        """
        key = self._key(name, labels)
        with self._lock:
            self._gauges[key] = callback

    def gauge_series(self) -> list[tuple[str, _LabelKey, float]]:
        """Every gauge as ``(name, label_pairs, current_value)`` rows.

        Callbacks run *outside* the registry lock — a gauge that reads
        another locked object (the engine) must not be able to deadlock a
        scrape — and a callback that raises is skipped rather than
        failing the whole exposition.
        """
        with self._lock:
            gauges = sorted(self._gauges.items())
        rows: list[tuple[str, _LabelKey, float]] = []
        for (name, labels), callback in gauges:
            try:
                value = float(callback())
            except Exception:
                continue
            rows.append((name, labels, value))
        return rows

    def gauges_snapshot(self) -> dict[str, float]:
        """All gauge series as ``name{label=value,...} -> current value``."""
        return {
            _series_name(name, labels): value
            for name, labels, value in self.gauge_series()
        }

    # -- rolling windows -----------------------------------------------------

    def track_window(
        self,
        alias: str,
        name: str,
        *,
        horizon_s: int = 60,
        clock: Callable[[], float] = time.monotonic,
        **labels: Any,
    ) -> RollingWindow:
        """Attach a rolling window to counter ``name`` (idempotent per
        ``alias``; re-registering an alias returns the existing window).

        Only :meth:`inc` calls whose labels are a superset of ``labels``
        feed the window — the serving layer uses this to keep
        ``endpoint_class="introspection"`` scrape traffic out of the
        request-rate windows.
        """
        with self._lock:
            tracker = self._window_aliases.get(alias)
            if tracker is not None:
                return tracker.window
            _, label_filter = self._key(name, labels)
            tracker = _WindowTracker(
                alias, name, label_filter, RollingWindow(horizon_s, clock=clock)
            )
            self._window_aliases[alias] = tracker
            self._window_index.setdefault(name, []).append(tracker)
        return tracker.window

    def window(self, alias: str) -> RollingWindow | None:
        """The window registered under ``alias`` (``None`` if absent)."""
        with self._lock:
            tracker = self._window_aliases.get(alias)
        return tracker.window if tracker is not None else None

    def windows_snapshot(
        self, horizons: Sequence[int] = (10, 60)
    ) -> dict[str, dict[str, dict[str, float]]]:
        """Every tracked window's totals/rates per horizon, by alias."""
        with self._lock:
            trackers = sorted(self._window_aliases.values(), key=lambda t: t.alias)
        return {tracker.alias: tracker.window.snapshot(horizons) for tracker in trackers}

    # -- inspection ----------------------------------------------------------
    #
    # Every read path locks (or copies under the lock): a /statusz or
    # /metricsz scrape races concurrent handler-thread inserts, and
    # iterating a dict that resizes mid-walk raises RuntimeError.

    def _counter_value(self, key: tuple[str, _LabelKey]) -> int:
        # Called under self._lock.  A cell's .value read is a plain int
        # load — at worst one in-flight add is missed, never torn.
        value = self._counters.get(key, 0)
        cells = self._cells.get(key)
        if cells:
            value += sum(cell.value for cell in cells)
        return value

    def counter(self, name: str, **labels: Any) -> int:
        """Current value of one counter series (0 if never incremented)."""
        key = self._key(name, labels)
        with self._lock:
            return self._counter_value(key)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all of its label series."""
        with self._lock:
            keys = {
                key
                for key in [*self._counters, *self._cells]
                if key[0] == name
            }
            return sum(self._counter_value(key) for key in keys)

    def families(self) -> tuple[str, ...]:
        """Distinct metric families (name prefix before the first dot)."""
        with self._lock:
            names = (
                {name for name, _ in self._counters}
                | {name for name, _ in self._histograms}
                | {name for name, _ in self._cells}
                | {name for name, _ in self._gauges}
            )
        return tuple(sorted({name.split(".", 1)[0] for name in names}))

    def counters_snapshot(self) -> dict[str, int]:
        """All counter series as ``name{label=value,...} -> count``."""
        with self._lock:
            keys = sorted({*self._counters, *self._cells})
            return {
                _series_name(name, labels): self._counter_value((name, labels))
                for name, labels in keys
            }

    def counter_series(self) -> list[tuple[str, _LabelKey, int]]:
        """All counter series as ``(name, label_pairs, value)`` rows —
        the structured form the Prometheus renderer consumes."""
        with self._lock:
            keys = sorted({*self._counters, *self._cells})
            return [
                (name, labels, self._counter_value((name, labels)))
                for name, labels in keys
            ]

    def histograms_snapshot(
        self, *, quantiles: bool = False
    ) -> dict[str, dict[str, float]]:
        """All histogram series as ``name{...} -> summary dict``.

        The default shape is byte-compatible with the pre-quantile
        manifest format; ``quantiles=True`` (the ``/statusz`` view) adds
        ``p50``/``p90``/``p99``/``p999`` to every non-empty series.
        """
        with self._lock:
            snapshot = {}
            for (name, labels), histogram in sorted(self._histograms.items()):
                summary = histogram.to_dict()
                if quantiles and histogram.count:
                    summary.update(histogram.quantiles())
                snapshot[_series_name(name, labels)] = summary
            return snapshot

    def histogram_series(self) -> list[tuple[str, _LabelKey, dict[str, Any]]]:
        """All histogram series as ``(name, label_pairs, exposition)``
        rows, where exposition holds count/sum/cumulative buckets and
        quantiles — copied under the lock so buckets and count agree."""
        with self._lock:
            return [
                (
                    name,
                    labels,
                    {**histogram.exposition(), "quantiles": histogram.quantiles()},
                )
                for (name, labels), histogram in sorted(self._histograms.items())
            ]

    def render(self) -> str:
        """Counters then histograms, one aligned line per series."""
        counters = self.counters_snapshot()
        histograms = self.histograms_snapshot()
        if not counters and not histograms:
            return "(no metrics recorded)"
        width = max(len(name) for name in [*counters, *histograms])
        lines = [f"{name.ljust(width)}  {value}" for name, value in counters.items()]
        for name, summary in histograms.items():
            rendered = " ".join(f"{key}={value:g}" for key, value in summary.items())
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            counter_keys = {*self._counters, *self._cells}
            return len(counter_keys) + len(self._histograms) + len(self._gauges)
