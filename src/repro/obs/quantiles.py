"""Log-bucketed quantile histograms for the serving telemetry plane.

The original :class:`Histogram` tracks count/sum/min/max/mean — enough
for the run manifest, useless for a latency SLO: the serving stack must
report p50/p99, and a streaming summary cannot.  :class:`BucketHistogram`
adds a fixed geometric bucket table (~1.5x growth per bucket, so every
estimate is within ±25% of the true value by construction) on top of the
exact summary fields.  Memory is bounded by the table size (one int per
bucket, ~90 buckets covering 1e-6 .. 1e9), observation cost is one
C-level ``bisect`` per value, and the summary fields stay byte-identical
to the plain histogram — the run manifest does not change shape.

Thread-safety contract: instances are mutated under the owning
:class:`~repro.obs.metrics.MetricsRegistry`'s lock (``observe`` /
``observe_many`` go through the registry), and every registry read path
copies under that same lock.  A standalone instance is single-writer.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = ["BUCKET_BOUNDS", "BucketHistogram", "GROWTH_FACTOR", "Histogram"]

#: Geometric growth between adjacent bucket upper bounds.  1.5x keeps the
#: worst-case quantile error at ±25% of the true value with ~90 buckets
#: over fifteen decades — the classic log-bucket trade.
GROWTH_FACTOR = 1.5

_FIRST_BOUND = 1e-6
_LAST_BOUND = 1e9


def _build_bounds() -> tuple[float, ...]:
    bounds = [_FIRST_BOUND]
    while bounds[-1] < _LAST_BOUND:
        bounds.append(bounds[-1] * GROWTH_FACTOR)
    return tuple(bounds)


#: Shared, immutable bucket upper bounds: every histogram indexes the
#: same table, so per-instance memory is just the count array.
BUCKET_BOUNDS = _build_bounds()

_OVERFLOW = len(BUCKET_BOUNDS)  # the +Inf bucket's index


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one value into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def observe_many(self, value: float, count: int) -> None:
        """Fold ``count`` identical observations of ``value`` in O(1).

        Equivalent to calling :meth:`observe` ``count`` times — bulk
        consumers (e.g. frame construction replaying per-entry lookup
        counts) use this to keep aggregation out of their hot loop.
        """
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        """JSON-ready summary (just ``{"count": 0}`` when empty)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.mean, 6),
        }


class BucketHistogram(Histogram):
    """A :class:`Histogram` that can also answer quantile queries.

    Each observation additionally lands in one of the shared geometric
    buckets (:data:`BUCKET_BOUNDS`); a quantile is then a cumulative walk
    plus linear interpolation inside the hit bucket, clamped to the exact
    observed min/max.  :meth:`to_dict` is inherited unchanged, so the run
    manifest stays byte-compatible with the pre-quantile format.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        super().__init__()
        self._buckets = [0] * (_OVERFLOW + 1)

    def observe(self, value: float) -> None:
        """Fold one value into the summary and its geometric bucket."""
        super().observe(value)
        self._buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def observe_many(self, value: float, count: int) -> None:
        """Fold ``count`` identical observations in O(1), buckets included."""
        if count <= 0:
            return
        super().observe_many(value, count)
        self._buckets[bisect_left(BUCKET_BOUNDS, value)] += count

    # -- quantiles -----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (0 <= q <= 1) of all observations.

        Exact at the extremes (min/max are tracked exactly); elsewhere a
        linear interpolation inside the bucket holding the target rank,
        so the estimate is off by at most one bucket's width.
        """
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = BUCKET_BOUNDS[index - 1] if index else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < _OVERFLOW
                    else self.maximum
                )
                estimate = lower + (upper - lower) * (
                    (rank - cumulative) / bucket_count
                )
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum  # pragma: no cover - rank <= count always hits

    def quantiles(self) -> dict[str, float]:
        """The serving-telemetry quantile set: p50/p90/p99/p999."""
        return {
            "p50": round(self.quantile(0.50), 6),
            "p90": round(self.quantile(0.90), 6),
            "p99": round(self.quantile(0.99), 6),
            "p999": round(self.quantile(0.999), 6),
        }

    # -- exposition ----------------------------------------------------------

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        Only bounds where the cumulative count changes are emitted (the
        shared table is ~90 buckets wide; a latency series usually spans
        a handful), plus the terminal ``+Inf`` bucket, which by
        construction equals the total count.  Counts are non-decreasing
        in emission order — the exposition validator asserts both laws.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets[:_OVERFLOW]):
            if bucket_count:
                cumulative += bucket_count
                pairs.append((BUCKET_BOUNDS[index], cumulative))
        pairs.append((math.inf, self.count))
        return pairs

    def exposition(self) -> dict[str, object]:
        """The Prometheus-renderable snapshot (built under the registry
        lock, so the buckets and the count agree)."""
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": self.cumulative_buckets(),
        }
