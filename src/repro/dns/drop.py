"""DRoP-style hostname decoding (DNS-based Router Positioning).

Huffaker et al. (2014) geolocate routers by decoding location hints in
their hostnames with domain-specific rules; the paper uses the seven
domains whose rules were validated by the operators themselves (§2.3.1).

:class:`DropEngine` is the *decoder*: given a hostname, it finds the rule
for the hostname's domain, extracts the location token from the right
label, strips serial digits, and resolves the token against the hint
dictionary.  Hostnames in domains without rules — or whose token does not
resolve — yield no location, mirroring DRoP's behaviour (and the reason
only 11,857 of 13.5 K candidate addresses could be geolocated).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.hints import HintDictionary, HintKind
from repro.dns.hostnames import (
    EXTRA_CONVENTIONS,
    GROUND_TRUTH_CONVENTIONS,
    DomainConvention,
)
from repro.geo.gazetteer import City


@dataclass(frozen=True, slots=True)
class DecodedLocation:
    """A successful decode: which rule fired and the city it named."""

    hostname: str
    domain: str
    token: str
    city: City


class DropEngine:
    """Decodes location hints in hostnames using per-domain rules."""

    def __init__(
        self,
        hints: HintDictionary,
        conventions: dict[str, DomainConvention] | None = None,
    ):
        self._hints = hints
        self._conventions = (
            dict(GROUND_TRUTH_CONVENTIONS) if conventions is None else dict(conventions)
        )

    @classmethod
    def with_ground_truth_rules(cls, hints: HintDictionary) -> "DropEngine":
        """The paper's configuration: only the 7 operator-validated domains."""
        return cls(hints, GROUND_TRUTH_CONVENTIONS)

    @classmethod
    def with_all_rules(cls, hints: HintDictionary) -> "DropEngine":
        """Every hinted convention in the synthetic world — what a vendor
        mining rDNS aggressively (à la NetAcuity, §5.2.4) could achieve."""
        return cls(hints, {**GROUND_TRUTH_CONVENTIONS, **EXTRA_CONVENTIONS})

    @property
    def domains(self) -> tuple[str, ...]:
        return tuple(sorted(self._conventions))

    def add_rule(self, convention: DomainConvention) -> None:
        """Register an additional domain rule."""
        self._conventions[convention.domain] = convention

    # -- decoding ------------------------------------------------------------

    def rule_for(self, hostname: str) -> DomainConvention | None:
        """The rule whose domain suffix matches ``hostname``, if any."""
        name = hostname.strip().lower().rstrip(".")
        for domain, convention in self._conventions.items():
            if name == domain or name.endswith("." + domain):
                return convention
        return None

    def decode(self, hostname: str) -> DecodedLocation | None:
        """Decode a hostname to a city, or ``None`` when no rule applies,
        the token position is missing, or the token is not in the
        dictionary."""
        convention = self.rule_for(hostname)
        if convention is None:
            return None
        name = hostname.strip().lower().rstrip(".")
        domain_label_count = convention.domain.count(".") + 1
        infix = name.split(".")[:-domain_label_count]
        if not infix:
            return None
        index = convention.label_index
        if index >= len(infix) or index < -len(infix):
            return None
        label = infix[index]
        token = self._select_chunk(label, convention.chunk)
        token = token.rstrip("0123456789")
        if not token:
            return None
        city = self._hints.decode(token, convention.kind)
        if city is None:
            return None
        return DecodedLocation(
            hostname=name, domain=convention.domain, token=token, city=city
        )

    @staticmethod
    def _select_chunk(label: str, chunk: str) -> str:
        if chunk == "first-dash":
            return label.split("-", 1)[0]
        if chunk == "last-dash":
            return label.rsplit("-", 1)[-1]
        return label

    def geolocate(self, hostname: str) -> City | None:
        """Convenience wrapper: decode and return just the city."""
        decoded = self.decode(hostname)
        return decoded.city if decoded is not None else None

    def kind_expected(self, domain: str) -> HintKind | None:
        """The token family a domain's rule expects, or ``None`` without a rule."""
        convention = self._conventions.get(domain)
        return convention.kind if convention is not None else None
