"""Reverse-DNS service over the synthetic Internet.

Provides the rDNS view a measurement study sees: a point-in-time mapping
from interface addresses to hostnames, with realistic coverage gaps (the
paper resolved hostnames for only 905 K of its 1,638 K addresses) and —
for the §3.1 longitudinal validation — a churn model that evolves a
snapshot across months: most names stay, some are cosmetically renamed,
some addresses are reassigned to routers in other cities (leaving fresh
hints), and some records disappear or stop matching any rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.dns.hostnames import HostnameFactory
from repro.net.ip import IPv4Address
from repro.topology.builder import SyntheticInternet


@dataclass(frozen=True, slots=True)
class RdnsConfig:
    """Coverage rates: which interfaces get PTR records at all."""

    named_transit_rate: float = 0.92
    regional_transit_rate: float = 0.70
    stub_rate: float = 0.45
    #: Domain used for hint-free eyeball pool names.
    pool_domain: str = "pool.example.com"

    def __post_init__(self) -> None:
        for rate in (self.named_transit_rate, self.regional_transit_rate, self.stub_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rDNS rate out of range: {rate!r}")


class RdnsService:
    """A point-in-time PTR table, queried like a resolver."""

    def __init__(self, records: dict[IPv4Address, str]):
        self._records = dict(records)

    @classmethod
    def build(
        cls,
        internet: SyntheticInternet,
        factory: HostnameFactory,
        rng: random.Random,
        config: RdnsConfig | None = None,
    ) -> "RdnsService":
        """Populate PTR records for the whole world."""
        config = config if config is not None else RdnsConfig()
        records: dict[IPv4Address, str] = {}
        for interface in internet.interfaces():
            router = internet.router_of(interface.address)
            autonomous_system = router.autonomous_system
            if autonomous_system.domain is not None and autonomous_system.is_transit:
                rate = config.named_transit_rate
            elif autonomous_system.domain is not None:
                rate = config.regional_transit_rate
            else:
                rate = config.stub_rate
            if rng.random() >= rate:
                continue
            if autonomous_system.domain is None:
                records[interface.address] = factory.generic_pool_hostname(
                    interface.address, config.pool_domain
                )
            else:
                hostname = factory.hostname_for(router, interface.address, rng)
                if hostname is not None:
                    records[interface.address] = hostname
        return cls(records)

    def lookup(self, address: IPv4Address) -> str | None:
        """PTR lookup; ``None`` models NXDOMAIN."""
        return self._records.get(address)

    def records(self) -> Mapping[IPv4Address, str]:
        """A copy of the full PTR table."""
        return dict(self._records)

    def addresses(self) -> tuple[IPv4Address, ...]:
        """All addresses with PTR records, ascending."""
        return tuple(sorted(self._records))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IPv4Address]:
        return iter(sorted(self._records))


@dataclass(frozen=True, slots=True)
class RdnsEvolution:
    """A later snapshot plus the truth about what happened in between.

    The fractions in the default parameters are the paper's §3.1 findings
    over 16 months: 69.1% of addresses kept their hostnames, 24% changed
    them (67.7% of those cosmetically, 30.8% with a genuine move, 1.5%
    into names matching no rule), and 6.9% lost their records.
    """

    service: RdnsService
    unchanged: frozenset[IPv4Address]
    cosmetic: frozenset[IPv4Address]  # new name, same location
    moved: frozenset[IPv4Address]  # reassigned to another city
    broken: frozenset[IPv4Address]  # new name matches no rule
    dropped: frozenset[IPv4Address]  # record disappeared

    @property
    def changed(self) -> frozenset[IPv4Address]:
        return self.cosmetic | self.moved | self.broken


@dataclass(frozen=True, slots=True)
class ChurnModel:
    """Per-snapshot-interval hostname churn probabilities (16-month base)."""

    drop_rate: float = 0.069
    change_rate: float = 0.24
    moved_given_change: float = 0.308
    broken_given_change: float = 0.015
    months: float = 16.0

    def scaled_to(self, months: float) -> "ChurnModel":
        """Linear time-scaling of drop/change rates (paper's own reasoning
        when arguing 50 days ≈ one tenth of 16 months, §5.2)."""
        if months <= 0:
            raise ValueError(f"months must be positive: {months!r}")
        factor = months / self.months
        return ChurnModel(
            drop_rate=min(1.0, self.drop_rate * factor),
            change_rate=min(1.0, self.change_rate * factor),
            moved_given_change=self.moved_given_change,
            broken_given_change=self.broken_given_change,
            months=months,
        )


def evolve(
    service: RdnsService,
    internet: SyntheticInternet,
    factory: HostnameFactory,
    rng: random.Random,
    model: ChurnModel | None = None,
) -> RdnsEvolution:
    """Produce a later rDNS snapshot under the churn model."""
    model = model if model is not None else ChurnModel()
    records: dict[IPv4Address, str] = {}
    unchanged: set[IPv4Address] = set()
    cosmetic: set[IPv4Address] = set()
    moved: set[IPv4Address] = set()
    broken: set[IPv4Address] = set()
    dropped: set[IPv4Address] = set()
    all_cities = tuple(internet.gazetteer)
    for address, hostname in sorted(service.records().items()):
        draw = rng.random()
        if draw < model.drop_rate:
            dropped.add(address)
            continue
        if draw >= model.drop_rate + model.change_rate:
            unchanged.add(address)
            records[address] = hostname
            continue
        router = internet.router_of(address)
        change_draw = rng.random()
        if change_draw < model.broken_given_change:
            broken.add(address)
            records[address] = f"unknown-{int(address) % 9999}.{_domain_of(hostname)}"
        elif change_draw < model.broken_given_change + model.moved_given_change:
            # Reassigned to gear in another city; the *new* hostname
            # carries the new location (like the paper's Dallas→Miami
            # ntt.net example).
            new_city = all_cities[rng.randrange(len(all_cities))]
            while new_city.key == router.city.key:
                new_city = all_cities[rng.randrange(len(all_cities))]
            moved.add(address)
            new_name = factory.hostname_for(
                router, address, rng, city_override=new_city,
                variant=rng.randint(1, 8),
            )
            if new_name is None or new_name == hostname:
                # Hint-free and pool names can't carry the new location;
                # the operator still renumbers them on reassignment.
                new_name = _mutate_serial(hostname, rng)
            records[address] = new_name
        else:
            # Cosmetic: renumbered interface at the same site.  A fresh
            # variant keeps the location token but changes the serials.
            cosmetic.add(address)
            new_name = factory.hostname_for(
                router, address, rng, variant=rng.randint(1, 8)
            )
            if new_name is None or new_name == hostname:
                new_name = _mutate_serial(hostname, rng)
            records[address] = new_name
    return RdnsEvolution(
        service=RdnsService(records),
        unchanged=frozenset(unchanged),
        cosmetic=frozenset(cosmetic),
        moved=frozenset(moved),
        broken=frozenset(broken),
        dropped=frozenset(dropped),
    )


def _domain_of(hostname: str) -> str:
    return ".".join(hostname.split(".")[-2:])


def _mutate_serial(hostname: str, rng: random.Random) -> str:
    """Change a hostname's leading interface tag, keeping the hint label."""
    labels = hostname.split(".")
    labels[0] = f"ae-{rng.randint(10, 99)}" if not labels[0].startswith("ae-") else f"xe-{rng.randint(10, 99)}"
    mutated = ".".join(labels)
    if mutated == hostname:  # pragma: no cover - defensive
        mutated = "r-" + hostname
    return mutated
