"""Location-hint dictionary: the codes operators embed in router names.

DRoP (Huffaker et al. 2014) decodes hostnames like
``ae-5.r23.dllstx09.us.bb.gin.ntt.net`` by recognizing location tokens —
IATA airport codes, CLLI-style city+state codes, and plain city names —
against a dictionary mapping tokens to coordinates.  This module builds
that dictionary over the gazetteer.

Two token families are supported:

* **IATA-style 3-letter codes** — curated real codes for major cities
  (``dfw``, ``fra``, ``ymq``…) with deterministic synthetic codes filling
  in the long tail;
* **CLLI-style 6-letter codes** — four letters of city plus a two-letter
  state/country tag (``dllstx`` for Dallas TX, ``miamfl`` for Miami FL),
  the convention NTT-like backbones use.

The dictionary serves both directions: hostname *generation* (city →
code, :mod:`repro.dns.hostnames`) and DRoP *decoding* (token → city,
:mod:`repro.dns.drop`).  Sharing one dictionary is what the paper's
operator-validated rules amount to: the decoder knows exactly the
convention the operator encodes with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.gazetteer import City, Gazetteer


class HintKind(enum.Enum):
    """Families of location tokens found in router hostnames."""

    IATA = "iata"
    CLLI = "clli"
    CITYNAME = "cityname"


#: Real IATA/metro codes for cities in the embedded gazetteer.  Keyed by
#: (city name, country); values are lowercase 3-letter codes.
_IATA_OVERRIDES: dict[tuple[str, str], str] = {
    ("New York", "US"): "jfk",
    ("Los Angeles", "US"): "lax",
    ("Chicago", "US"): "ord",
    ("Houston", "US"): "iah",
    ("Phoenix", "US"): "phx",
    ("Philadelphia", "US"): "phl",
    ("San Antonio", "US"): "sat",
    ("San Diego", "US"): "san",
    ("Dallas", "US"): "dfw",
    ("San Jose", "US"): "sjc",
    ("Austin", "US"): "aus",
    ("Jacksonville", "US"): "jax",
    ("San Francisco", "US"): "sfo",
    ("Indianapolis", "US"): "ind",
    ("Columbus", "US"): "cmh",
    ("Fort Worth", "US"): "ftw",
    ("Charlotte", "US"): "clt",
    ("Seattle", "US"): "sea",
    ("Denver", "US"): "den",
    ("Washington", "US"): "iad",
    ("Boston", "US"): "bos",
    ("Nashville", "US"): "bna",
    ("Baltimore", "US"): "bwi",
    ("Portland", "US"): "pdx",
    ("Las Vegas", "US"): "las",
    ("Milwaukee", "US"): "mke",
    ("Albuquerque", "US"): "abq",
    ("Kansas City", "US"): "mci",
    ("Atlanta", "US"): "atl",
    ("Miami", "US"): "mia",
    ("Oakland", "US"): "oak",
    ("Minneapolis", "US"): "msp",
    ("Cleveland", "US"): "cle",
    ("New Orleans", "US"): "msy",
    ("Tampa", "US"): "tpa",
    ("Honolulu", "US"): "hnl",
    ("Pittsburgh", "US"): "pit",
    ("Cincinnati", "US"): "cvg",
    ("St. Louis", "US"): "stl",
    ("Salt Lake City", "US"): "slc",
    ("Raleigh", "US"): "rdu",
    ("Richmond", "US"): "ric",
    ("Sacramento", "US"): "smf",
    ("Detroit", "US"): "dtw",
    ("Memphis", "US"): "mem",
    ("Oklahoma City", "US"): "okc",
    ("Louisville", "US"): "sdf",
    ("Tucson", "US"): "tus",
    ("Fresno", "US"): "fat",
    ("Omaha", "US"): "oma",
    ("Colorado Springs", "US"): "cos",
    ("Virginia Beach", "US"): "orf",
    ("Buffalo", "US"): "buf",
    ("Anchorage", "US"): "anc",
    ("Boise", "US"): "boi",
    ("Des Moines", "US"): "dsm",
    ("Billings", "US"): "bil",
    ("Charleston", "US"): "chs",
    ("San Luis Obispo", "US"): "sbp",
    ("Toronto", "CA"): "yyz",
    ("Montreal", "CA"): "ymq",
    ("Vancouver", "CA"): "yvr",
    ("Calgary", "CA"): "yyc",
    ("Edmonton", "CA"): "yeg",
    ("Ottawa", "CA"): "yow",
    ("Winnipeg", "CA"): "ywg",
    ("Halifax", "CA"): "yhz",
    ("Quebec City", "CA"): "yqb",
    ("Berlin", "DE"): "ber",
    ("Hamburg", "DE"): "ham",
    ("Munich", "DE"): "muc",
    ("Cologne", "DE"): "cgn",
    ("Frankfurt", "DE"): "fra",
    ("Stuttgart", "DE"): "str",
    ("Dusseldorf", "DE"): "dus",
    ("Leipzig", "DE"): "lej",
    ("Dresden", "DE"): "drs",
    ("Hanover", "DE"): "haj",
    ("Nuremberg", "DE"): "nue",
    ("London", "GB"): "lhr",
    ("Birmingham", "GB"): "bhx",
    ("Manchester", "GB"): "man",
    ("Leeds", "GB"): "lba",
    ("Glasgow", "GB"): "gla",
    ("Edinburgh", "GB"): "edi",
    ("Liverpool", "GB"): "lpl",
    ("Bristol", "GB"): "brs",
    ("Cardiff", "GB"): "cwl",
    ("Belfast", "GB"): "bfs",
    ("Newcastle", "GB"): "ncl",
    ("Rome", "IT"): "fco",
    ("Milan", "IT"): "mxp",
    ("Naples", "IT"): "nap",
    ("Turin", "IT"): "trn",
    ("Palermo", "IT"): "pmo",
    ("Genoa", "IT"): "goa",
    ("Bologna", "IT"): "blq",
    ("Florence", "IT"): "flr",
    ("Venice", "IT"): "vce",
    ("Bari", "IT"): "bri",
    ("Catania", "IT"): "cta",
    ("Paris", "FR"): "cdg",
    ("Marseille", "FR"): "mrs",
    ("Lyon", "FR"): "lys",
    ("Toulouse", "FR"): "tls",
    ("Nice", "FR"): "nce",
    ("Nantes", "FR"): "nte",
    ("Strasbourg", "FR"): "sxb",
    ("Bordeaux", "FR"): "bod",
    ("Lille", "FR"): "lil",
    ("Amsterdam", "NL"): "ams",
    ("Rotterdam", "NL"): "rtm",
    ("The Hague", "NL"): "hag",
    ("Eindhoven", "NL"): "ein",
    ("Tokyo", "JP"): "nrt",
    ("Osaka", "JP"): "kix",
    ("Nagoya", "JP"): "ngo",
    ("Sapporo", "JP"): "cts",
    ("Fukuoka", "JP"): "fuk",
    ("Sendai", "JP"): "sdj",
    ("Hiroshima", "JP"): "hij",
    ("Madrid", "ES"): "mad",
    ("Barcelona", "ES"): "bcn",
    ("Valencia", "ES"): "vlc",
    ("Seville", "ES"): "svq",
    ("Zaragoza", "ES"): "zaz",
    ("Malaga", "ES"): "agp",
    ("Bilbao", "ES"): "bio",
    ("Singapore", "SG"): "sin",
    ("Hong Kong", "HK"): "hkg",
    ("Zurich", "CH"): "zrh",
    ("Geneva", "CH"): "gva",
    ("Basel", "CH"): "bsl",
    ("Bern", "CH"): "brn",
    ("Moscow", "RU"): "svo",
    ("Saint Petersburg", "RU"): "led",
    ("Novosibirsk", "RU"): "ovb",
    ("Yekaterinburg", "RU"): "svx",
    ("Vladivostok", "RU"): "vvo",
    ("Warsaw", "PL"): "waw",
    ("Krakow", "PL"): "krk",
    ("Wroclaw", "PL"): "wro",
    ("Poznan", "PL"): "poz",
    ("Gdansk", "PL"): "gdn",
    ("Sofia", "BG"): "sof",
    ("Plovdiv", "BG"): "pdv",
    ("Varna", "BG"): "var",
    ("Sydney", "AU"): "syd",
    ("Melbourne", "AU"): "mel",
    ("Brisbane", "AU"): "bne",
    ("Perth", "AU"): "per",
    ("Adelaide", "AU"): "adl",
    ("Canberra", "AU"): "cbr",
    ("Prague", "CZ"): "prg",
    ("Brno", "CZ"): "brq",
    ("Stockholm", "SE"): "arn",
    ("Gothenburg", "SE"): "got",
    ("Malmo", "SE"): "mma",
    ("Bucharest", "RO"): "otp",
    ("Cluj-Napoca", "RO"): "clj",
    ("Timisoara", "RO"): "tsr",
    ("Kyiv", "UA"): "kbp",
    ("Kharkiv", "UA"): "hrk",
    ("Odesa", "UA"): "ods",
    ("Lviv", "UA"): "lwo",
    ("Vienna", "AT"): "vie",
    ("Brussels", "BE"): "bru",
    ("Copenhagen", "DK"): "cph",
    ("Helsinki", "FI"): "hel",
    ("Oslo", "NO"): "osl",
    ("Dublin", "IE"): "dub",
    ("Lisbon", "PT"): "lis",
    ("Porto", "PT"): "opo",
    ("Athens", "GR"): "ath",
    ("Budapest", "HU"): "bud",
    ("Bratislava", "SK"): "bts",
    ("Ljubljana", "SI"): "lju",
    ("Zagreb", "HR"): "zag",
    ("Belgrade", "RS"): "beg",
    ("Vilnius", "LT"): "vno",
    ("Riga", "LV"): "rix",
    ("Tallinn", "EE"): "tll",
    ("Minsk", "BY"): "msq",
    ("Istanbul", "TR"): "ist",
    ("Ankara", "TR"): "esb",
    ("Tel Aviv", "IL"): "tlv",
    ("Dubai", "AE"): "dxb",
    ("Riyadh", "SA"): "ruh",
    ("Doha", "QA"): "doh",
    ("Tehran", "IR"): "ika",
    ("Tbilisi", "GE"): "tbs",
    ("Baku", "AZ"): "gyd",
    ("Almaty", "KZ"): "ala",
    ("Tashkent", "UZ"): "tas",
    ("Beijing", "CN"): "pek",
    ("Shanghai", "CN"): "pvg",
    ("Guangzhou", "CN"): "can",
    ("Shenzhen", "CN"): "szx",
    ("Chengdu", "CN"): "ctu",
    ("Taipei", "TW"): "tpe",
    ("Seoul", "KR"): "icn",
    ("Busan", "KR"): "pus",
    ("Mumbai", "IN"): "bom",
    ("Delhi", "IN"): "del",
    ("Bangalore", "IN"): "blr",
    ("Chennai", "IN"): "maa",
    ("Hyderabad", "IN"): "hyd",
    ("Kolkata", "IN"): "ccu",
    ("Karachi", "PK"): "khi",
    ("Lahore", "PK"): "lhe",
    ("Dhaka", "BD"): "dac",
    ("Colombo", "LK"): "cmb",
    ("Kathmandu", "NP"): "ktm",
    ("Yangon", "MM"): "rgn",
    ("Bangkok", "TH"): "bkk",
    ("Hanoi", "VN"): "han",
    ("Ho Chi Minh City", "VN"): "sgn",
    ("Kuala Lumpur", "MY"): "kul",
    ("Penang", "MY"): "pen",
    ("Jakarta", "ID"): "cgk",
    ("Manila", "PH"): "mnl",
    ("Auckland", "NZ"): "akl",
    ("Wellington", "NZ"): "wlg",
    ("Christchurch", "NZ"): "chc",
    ("Mexico City", "MX"): "mex",
    ("Guadalajara", "MX"): "gdl",
    ("Monterrey", "MX"): "mty",
    ("Bogota", "CO"): "bog",
    ("Caracas", "VE"): "ccs",
    ("Quito", "EC"): "uio",
    ("Lima", "PE"): "lim",
    ("La Paz", "BO"): "lpb",
    ("Sao Paulo", "BR"): "gru",
    ("Rio de Janeiro", "BR"): "gig",
    ("Brasilia", "BR"): "bsb",
    ("Porto Alegre", "BR"): "poa",
    ("Recife", "BR"): "rec",
    ("Fortaleza", "BR"): "for",
    ("Curitiba", "BR"): "cwb",
    ("Montevideo", "UY"): "mvd",
    ("Buenos Aires", "AR"): "eze",
    ("Santiago", "CL"): "scl",
    ("Panama City", "PA"): "pty",
    ("San Jose CR", "CR"): "sjo",
    ("Algiers", "DZ"): "alg",
    ("Casablanca", "MA"): "cmn",
    ("Tunis", "TN"): "tun",
    ("Cairo", "EG"): "cai",
    ("Dakar", "SN"): "dkr",
    ("Abidjan", "CI"): "abj",
    ("Accra", "GH"): "acc",
    ("Lagos", "NG"): "los",
    ("Kinshasa", "CD"): "fih",
    ("Addis Ababa", "ET"): "add",
    ("Nairobi", "KE"): "nbo",
    ("Kampala", "UG"): "ebb",
    ("Kigali", "RW"): "kgl",
    ("Dar es Salaam", "TZ"): "dar",
    ("Luanda", "AO"): "lad",
    ("Lusaka", "ZM"): "lun",
    ("Harare", "ZW"): "hre",
    ("Maputo", "MZ"): "mpm",
    ("Antananarivo", "MG"): "tnr",
    ("Port Louis", "MU"): "mru",
    ("Johannesburg", "ZA"): "jnb",
    ("Cape Town", "ZA"): "cpt",
    ("Durban", "ZA"): "dur",
}

#: Postal abbreviations for the US states present in the gazetteer;
#: CLLI-style codes are city(4) + state(2) for US cities.
_US_STATE_ABBR: dict[str, str] = {
    "New York": "ny", "California": "ca", "Illinois": "il", "Texas": "tx",
    "Arizona": "az", "Pennsylvania": "pa", "Florida": "fl", "Indiana": "in",
    "Ohio": "oh", "North Carolina": "nc", "Washington": "wa",
    "Colorado": "co", "District of Columbia": "dc", "Massachusetts": "ma",
    "Tennessee": "tn", "Maryland": "md", "Oregon": "or", "Nevada": "nv",
    "Wisconsin": "wi", "New Mexico": "nm", "Missouri": "mo", "Georgia": "ga",
    "Minnesota": "mn", "Louisiana": "la", "Hawaii": "hi", "Utah": "ut",
    "Virginia": "va", "Michigan": "mi", "Oklahoma": "ok", "Kentucky": "ky",
    "Nebraska": "ne", "South Carolina": "sc", "Alaska": "ak", "Idaho": "id",
    "Iowa": "ia", "Montana": "mt",
}

#: Real-world CLLI-style codes where the generated form would differ from
#: the convention operators actually use (paper's worked examples, §3.1).
_CLLI_OVERRIDES: dict[tuple[str, str], str] = {
    ("Dallas", "US"): "dllstx",
    ("Miami", "US"): "miamfl",
    ("New York", "US"): "nycmny",
    ("Los Angeles", "US"): "lsanca",
    ("Chicago", "US"): "chcgil",
    ("Ashburn", "US"): "asbnva",
}

_VOWELS = set("aeiou")


def city_slug(city: City) -> str:
    """Lowercase alphabetic slug of a city name (``sanfrancisco``)."""
    return "".join(ch for ch in city.name.lower() if ch.isalpha())


def _squeeze(name: str, length: int) -> str:
    """Consonant-squeezed prefix (``dallas`` → ``dlls``), padded if short."""
    letters = [ch for ch in name.lower() if ch.isalpha()]
    if not letters:
        return "x" * length
    squeezed = [letters[0]] + [ch for ch in letters[1:] if ch not in _VOWELS]
    if len(squeezed) < length:
        squeezed += [ch for ch in letters[1:] if ch in _VOWELS]
    squeezed += ["x"] * length
    return "".join(squeezed[:length])


@dataclass(frozen=True, slots=True)
class Hint:
    """One dictionary entry: a token naming a specific city."""

    token: str
    kind: HintKind
    city: City


class HintDictionary:
    """Bidirectional token↔city dictionary over a gazetteer.

    Every gazetteer city receives exactly one IATA-style token and one
    CLLI-style token; city-name slugs decode too.  Tokens are unique
    within their kind, so decoding is unambiguous — matching the
    "operator ground truth rules" setting of the paper, where the decoding
    of a token is authoritative, not guessed.
    """

    def __init__(self, gazetteer: Gazetteer):
        self._gazetteer = gazetteer
        self._iata_of: dict[tuple[str, str], str] = {}
        self._clli_of: dict[tuple[str, str], str] = {}
        self._by_token: dict[tuple[HintKind, str], City] = {}
        taken_iata: set[str] = set()
        taken_clli: set[str] = set()
        for city in gazetteer:
            key = (city.name, city.country)
            iata = _IATA_OVERRIDES.get(key)
            if iata is None or iata in taken_iata:
                iata = self._fresh_iata(city, taken_iata)
            taken_iata.add(iata)
            self._iata_of[key] = iata
            self._by_token[(HintKind.IATA, iata)] = city

            clli = self._clli_code(city, taken_clli)
            taken_clli.add(clli)
            self._clli_of[key] = clli
            self._by_token[(HintKind.CLLI, clli)] = city

            slug = city_slug(city)
            self._by_token.setdefault((HintKind.CITYNAME, slug), city)

    @staticmethod
    def _fresh_iata(city: City, taken: set[str]) -> str:
        slug = city_slug(city)
        candidates = [slug[:3], _squeeze(slug, 3)]
        # Sliding windows over the name, then country-salted fallbacks.
        candidates += [slug[i : i + 3] for i in range(1, max(1, len(slug) - 2))]
        candidates += [slug[:2] + city.country[0].lower(), slug[:1] + city.country.lower()]
        for candidate in candidates:
            if len(candidate) == 3 and candidate not in taken:
                return candidate
        serial = 0
        while f"z{serial:02d}" in taken:  # pragma: no cover - pathological
            serial += 1
        return f"z{serial:02d}"

    @staticmethod
    def _clli_code(city: City, taken: set[str]) -> str:
        override = _CLLI_OVERRIDES.get((city.name, city.country))
        if override is not None and override not in taken:
            return override
        slug = city_slug(city)
        if city.country == "US":
            suffix = _US_STATE_ABBR.get(city.region, "us")
        else:
            suffix = city.country.lower()
        for stem in (slug[:4].ljust(4, "x"), _squeeze(slug, 4)):
            candidate = stem + suffix
            if candidate not in taken:
                return candidate
        serial = 0
        while _squeeze(slug, 3) + str(serial) + suffix in taken:  # pragma: no cover
            serial += 1
        return _squeeze(slug, 3) + str(serial) + suffix

    # -- encoding ----------------------------------------------------------

    def iata(self, city: City) -> str:
        """The IATA-style token for a city."""
        return self._iata_of[(city.name, city.country)]

    def clli(self, city: City) -> str:
        """The CLLI-style token for a city."""
        return self._clli_of[(city.name, city.country)]

    def token(self, city: City, kind: HintKind) -> str:
        """The token of the requested family for a city."""
        if kind is HintKind.IATA:
            return self.iata(city)
        if kind is HintKind.CLLI:
            return self.clli(city)
        return city_slug(city)

    # -- decoding ----------------------------------------------------------

    def decode(self, token: str, kind: HintKind) -> City | None:
        """The city a token names, or ``None`` for unknown tokens."""
        return self._by_token.get((kind, token.lower()))

    def __len__(self) -> int:
        return len(self._by_token)
