"""Router hostname synthesis: per-domain naming conventions.

Backbone operators name router interfaces systematically, embedding an
interface tag, a router tag, and a *location token*:
``ae-5.r23.dllstx09.us.bb.gin.ntt.net`` is interface ``ae-5`` on router
``r23`` at NTT's Dallas TX site 09.  DRoP's domain-specific rules (and
ours, :mod:`repro.dns.drop`) describe where in each domain's names that
token sits.

:class:`HostnameFactory` is the *encoder* side: given a router and its
operator's domain, it emits a hostname following that domain's
convention.  Conventions for the paper's seven ground-truth domains
mirror the real operators' styles; every other AS either uses a generic
hinted convention or hint-free names (most of the Internet's rDNS has no
usable location hints — the reason DNS-based methods have limited scope,
§7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dns.hints import HintDictionary, HintKind, city_slug
from repro.geo.gazetteer import City
from repro.net.ip import IPv4Address
from repro.topology.router import Router


@dataclass(frozen=True, slots=True)
class DomainConvention:
    """Where a domain's hostnames carry their location token.

    ``label_index`` indexes the dot-separated labels *before* the domain
    suffix (negative = from the right); ``chunk`` selects a dash-separated
    piece of that label.  The shared convention table is exactly what an
    operator-validated DRoP rule encodes, which is why encoder and decoder
    both read it.
    """

    domain: str
    kind: HintKind
    label_index: int
    chunk: str = "whole"  # "whole" | "first-dash" | "last-dash"

    def __post_init__(self) -> None:
        if self.chunk not in ("whole", "first-dash", "last-dash"):
            raise ValueError(f"unknown chunk selector: {self.chunk!r}")


#: Conventions for domains whose operators confirmed their naming rules
#: (the paper's seven ground-truth domains, §2.3.1).
GROUND_TRUTH_CONVENTIONS: dict[str, DomainConvention] = {
    "ntt.net": DomainConvention("ntt.net", HintKind.CLLI, 2),
    "cogentco.com": DomainConvention("cogentco.com", HintKind.IATA, 2),
    "seabone.net": DomainConvention("seabone.net", HintKind.CITYNAME, -1),
    "pnap.net": DomainConvention("pnap.net", HintKind.IATA, -1),
    "peak10.net": DomainConvention("peak10.net", HintKind.IATA, 0, chunk="first-dash"),
    "digitalwest.net": DomainConvention("digitalwest.net", HintKind.IATA, -1),
    "belwue.de": DomainConvention("belwue.de", HintKind.CITYNAME, 0, chunk="last-dash"),
}

#: Conventions for other hint-bearing domains in the synthetic world.
#: DRoP has no operator ground truth for these (they model the other
#: 1,391 domains), but a database willing to guess hints could use them.
EXTRA_CONVENTIONS: dict[str, DomainConvention] = {
    "gbone.example.net": DomainConvention("gbone.example.net", HintKind.IATA, -1),
    "aptransit.example.net": DomainConvention(
        "aptransit.example.net", HintKind.CITYNAME, 0, chunk="first-dash"
    ),
}

#: Generic convention for regional transit domains (``rt3.de.example.net``).
GENERIC_HINTED = DomainConvention("", HintKind.CITYNAME, -1)


class HostnameFactory:
    """Emits hostnames for router interfaces, one domain style at a time."""

    def __init__(self, hints: HintDictionary):
        self._hints = hints

    def convention_for(self, domain: str) -> DomainConvention | None:
        """The location-token convention a domain uses (``None`` = no hints)."""
        if domain in GROUND_TRUTH_CONVENTIONS:
            return GROUND_TRUTH_CONVENTIONS[domain]
        if domain in EXTRA_CONVENTIONS:
            return EXTRA_CONVENTIONS[domain]
        if domain == "eurocore.example.net":
            return None  # deliberately hint-free tier1
        if domain.endswith(".example.net"):  # regional transits
            return DomainConvention(domain, GENERIC_HINTED.kind, GENERIC_HINTED.label_index)
        return None

    def hostname_for(
        self,
        router: Router,
        address: IPv4Address,
        rng: random.Random,
        *,
        city_override: City | None = None,
        variant: int = 0,
    ) -> str | None:
        """A hostname for one interface, or ``None`` if the AS names none.

        ``city_override`` encodes a *different* city than the router's true
        site — used to synthesize the stale-hostname cases of §3.1, where
        an address moved but its rDNS record still carries the old hint.
        ``variant`` perturbs the interface-tag serials without touching the
        location token, producing the paper's *cosmetic* renames (same
        site, renumbered interface).
        """
        domain = router.autonomous_system.domain
        if domain is None:
            return None
        city = city_override if city_override is not None else router.city
        site = router.router_id % 90 + 1
        serial = (int(address) + variant) % 10
        if domain == "ntt.net":
            token = self._hints.clli(city)
            return (
                f"ae-{serial}.r{router.router_id % 30 + 1:02d}."
                f"{token}{site:02d}.{city.country.lower()}.bb.gin.ntt.net"
            )
        if domain == "cogentco.com":
            token = self._hints.iata(city)
            return f"be{2000 + (int(address) + variant) % 999}.ccr{router.router_id % 40 + 1:02d}.{token}{site:02d}.atlas.cogentco.com"
        if domain == "seabone.net":
            token = city_slug(city)
            return f"et{serial}-{rng.randint(0, 3)}-0.{token}{site:02d}.seabone.net"
        if domain == "pnap.net":
            token = self._hints.iata(city)
            return f"border{serial}.pc{router.router_id % 9 + 1}-bbnet{rng.randint(1, 2)}.ext{serial}a.{token}.pnap.net"
        if domain == "peak10.net":
            token = self._hints.iata(city)
            return f"{token}-core{(router.router_id + variant) % 9 + 1}.peak10.net"
        if domain == "digitalwest.net":
            token = self._hints.iata(city)
            return f"gw{serial}.{token}.digitalwest.net"
        if domain == "belwue.de":
            token = city_slug(city)
            return f"kr-{token}{(router.router_id + variant) % 9 + 1}.belwue.de"
        if domain == "gbone.example.net":
            token = self._hints.iata(city)
            return f"xe-{serial}-0.cr{router.router_id % 20 + 1}.{token}{site:02d}.gbone.example.net"
        if domain == "aptransit.example.net":
            token = city_slug(city)
            return f"{token}-bb{(router.router_id + variant) % 20 + 1}.aptransit.example.net"
        if domain == "eurocore.example.net":
            # Hint-free: opaque router serials only.
            return f"core{router.router_id}-{variant}.pop{site}.eurocore.example.net"
        # Generic regional transit: a hinted catch-all convention.
        token = city_slug(city)
        return f"gw{serial}.{token}.{domain}"

    def generic_pool_hostname(self, address: IPv4Address, domain: str) -> str:
        """An eyeball-style reverse name with no location information."""
        dashed = str(address).replace(".", "-")
        return f"host-{dashed}.{domain}"
