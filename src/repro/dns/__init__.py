"""rDNS substrate: hint dictionary, hostname conventions, DRoP decoding."""

from repro.dns.drop import DecodedLocation, DropEngine
from repro.dns.hints import Hint, HintDictionary, HintKind, city_slug
from repro.dns.hostnames import (
    EXTRA_CONVENTIONS,
    GROUND_TRUTH_CONVENTIONS,
    DomainConvention,
    HostnameFactory,
)
from repro.dns.rdns import (
    ChurnModel,
    RdnsConfig,
    RdnsEvolution,
    RdnsService,
    evolve,
)

__all__ = [
    "DecodedLocation",
    "DropEngine",
    "Hint",
    "HintDictionary",
    "HintKind",
    "city_slug",
    "EXTRA_CONVENTIONS",
    "GROUND_TRUTH_CONVENTIONS",
    "DomainConvention",
    "HostnameFactory",
    "ChurnModel",
    "RdnsConfig",
    "RdnsEvolution",
    "RdnsService",
    "evolve",
]
