"""The paper's evaluation framework: coverage, consistency, accuracy,
calibration, the ARIN case study, and recommendations."""

from repro.core.accuracy import (
    DatabaseAccuracy,
    SharedErrorReport,
    shared_incorrect_analysis,
    evaluate_all,
    evaluate_by_country,
    evaluate_by_rir,
    evaluate_by_source,
    evaluate_database,
    split_by_country,
    split_by_rir,
    top_countries,
)
from repro.core.arincase import ArinCaseStudy, arin_case_study
from repro.core.cdf import LOG_DISTANCE_GRID_KM, Ecdf
from repro.core.colocality import (
    BlockSpan,
    ColocalityReport,
    block_level_error_bound,
    measure_block_colocality,
)
from repro.core.defaults import (
    DefaultCoordinateReport,
    default_coordinate_table,
    detect_default_coordinates,
    is_default_coordinate,
)
from repro.core.prefixstats import (
    PrefixGranularityReport,
    prefix_granularity,
    prefix_granularity_table,
)
from repro.core.svgplot import PALETTE, render_cdf_svg
from repro.core.routerlevel import (
    RouterConsistencyReport,
    router_consistency,
    router_consistency_table,
)
from repro.core.majority import (
    MajorityAgreement,
    MajorityLocation,
    MajorityVsTruth,
    majority_location,
    majority_vote_reference,
    score_against_majority,
    validate_majority_against_truth,
)
from repro.core.cityrange import (
    CityRangeCalibration,
    CrossDatabaseCheck,
    GazetteerCheck,
    calibrate_city_range,
)
from repro.core.consistency import (
    CityPairDistance,
    ConsistencyReport,
    CountryPairAgreement,
    consistency_analysis,
)
from repro.core.coverage import CoverageReport, coverage_analysis, coverage_table
from repro.core.frame import (
    BLOCK_LEVEL,
    CITY_LEVEL,
    COVERED,
    HAS_CITY,
    HAS_COORDS,
    HAS_COUNTRY,
    FrameColumn,
    LookupFrame,
    StringTable,
    as_frame,
)
from repro.core.pipeline import RouterGeolocationStudy, StudyResult
from repro.core.recommendations import Recommendation, build_recommendations
from repro.core.report import (
    percent,
    render_cdf_grid,
    render_table,
    render_table_markdown,
)

__all__ = [
    "DatabaseAccuracy",
    "SharedErrorReport",
    "shared_incorrect_analysis",
    "evaluate_all",
    "evaluate_by_country",
    "evaluate_by_rir",
    "evaluate_by_source",
    "evaluate_database",
    "split_by_country",
    "split_by_rir",
    "top_countries",
    "ArinCaseStudy",
    "arin_case_study",
    "BlockSpan",
    "ColocalityReport",
    "block_level_error_bound",
    "measure_block_colocality",
    "DefaultCoordinateReport",
    "default_coordinate_table",
    "detect_default_coordinates",
    "is_default_coordinate",
    "PrefixGranularityReport",
    "prefix_granularity",
    "prefix_granularity_table",
    "RouterConsistencyReport",
    "router_consistency",
    "router_consistency_table",
    "MajorityAgreement",
    "MajorityLocation",
    "MajorityVsTruth",
    "majority_location",
    "majority_vote_reference",
    "score_against_majority",
    "validate_majority_against_truth",
    "LOG_DISTANCE_GRID_KM",
    "Ecdf",
    "CityRangeCalibration",
    "CrossDatabaseCheck",
    "GazetteerCheck",
    "calibrate_city_range",
    "CityPairDistance",
    "ConsistencyReport",
    "CountryPairAgreement",
    "consistency_analysis",
    "CoverageReport",
    "coverage_analysis",
    "coverage_table",
    "BLOCK_LEVEL",
    "CITY_LEVEL",
    "COVERED",
    "HAS_CITY",
    "HAS_COORDS",
    "HAS_COUNTRY",
    "FrameColumn",
    "LookupFrame",
    "StringTable",
    "as_frame",
    "RouterGeolocationStudy",
    "StudyResult",
    "Recommendation",
    "build_recommendations",
    "percent",
    "render_cdf_grid",
    "render_table",
    "render_table_markdown",
    "PALETTE",
    "render_cdf_svg",
]
