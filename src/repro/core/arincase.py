"""The ARIN case study (§5.2.3).

Why is city-level accuracy worst in ARIN?  The paper dissects
MaxMind-Paid: (1) most non-US ARIN ground-truth addresses are geolocated
to the US anyway — registry data at work; (2) among ARIN addresses truly
in the US, most wrong city answers come from *block-level* records
(/24-or-larger prefixes carrying one location), far more often than
correct answers do.  This module computes the same dissection for any
database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frame import BLOCK_LEVEL, CITY_LEVEL, LookupFrame
from repro.geo.coordinates import haversine_km
from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase
from repro.groundtruth.record import GroundTruthSet
from repro.net.registry import TeamCymruWhois

DEFAULT_CITY_RANGE_KM = 40.0
FAR_ERROR_KM = 1000.0


@dataclass(frozen=True, slots=True)
class ArinCaseStudy:
    """All the §5.2.3 quantities for one database."""

    database: str
    arin_total: int
    #: ARIN addresses whose ground-truth location is outside the US.
    arin_non_us: int
    #: ...of those, how many the database pulls into the US.
    pulled_to_us: int
    #: ...of the pulled, how many get a city-level answer,
    pulled_city_level: int
    #: ...and how many of those are >1000 km from the truth.
    pulled_city_far: int
    #: Ground-truth addresses actually in the US (any RIR).
    us_total: int
    #: ARIN+US addresses with a city-level answer.
    us_arin_city_covered: int
    #: ...of those, wrong at the city range.
    us_arin_city_wrong: int
    #: Block-level share among wrong and correct city answers.
    wrong_block_level: int
    correct_block_level: int

    @property
    def pulled_rate(self) -> float:
        return self.pulled_to_us / self.arin_non_us if self.arin_non_us else 0.0

    @property
    def us_city_error_rate(self) -> float:
        return (
            self.us_arin_city_wrong / self.us_arin_city_covered
            if self.us_arin_city_covered
            else 0.0
        )

    @property
    def wrong_block_level_rate(self) -> float:
        return self.wrong_block_level / self.us_arin_city_wrong if self.us_arin_city_wrong else 0.0

    @property
    def correct_block_level_rate(self) -> float:
        correct = self.us_arin_city_covered - self.us_arin_city_wrong
        return self.correct_block_level / correct if correct else 0.0


def _arin_case_from_frame(
    name: str,
    frame: LookupFrame,
    ground_truth: GroundTruthSet,
    whois: TeamCymruWhois,
    city_range_km: float,
    far_km: float,
) -> ArinCaseStudy:
    """The same dissection off frame columns (no per-record lookups)."""
    column = frame.column(name)
    flags = column.flags
    country_ids = column.country_ids
    lats = column.lats
    lons = column.lons
    position_of = frame.position
    us_id = frame.countries.id_of("US")
    arin_total = arin_non_us = pulled = pulled_city = pulled_far = 0
    us_total = 0
    us_city_covered = us_city_wrong = 0
    wrong_block = correct_block = 0
    for record in ground_truth:
        is_arin = whois.lookup(record.address).registry is RIR.ARIN
        truly_us = record.country == "US"
        if truly_us:
            us_total += 1
        if not is_arin:
            continue
        arin_total += 1
        position = position_of(record.address)
        value = flags[position]
        if not truly_us:
            arin_non_us += 1
            if value and country_ids[position] == us_id:
                pulled += 1
                if value & CITY_LEVEL == CITY_LEVEL:
                    pulled_city += 1
                    truth = record.location
                    error = haversine_km(
                        lats[position], lons[position], truth.lat, truth.lon
                    )
                    if error > far_km:
                        pulled_far += 1
            continue
        # ARIN addresses genuinely in the US: the block-level dissection.
        if value & CITY_LEVEL != CITY_LEVEL:
            continue
        us_city_covered += 1
        truth = record.location
        error = haversine_km(lats[position], lons[position], truth.lat, truth.lon)
        block_level = bool(value & BLOCK_LEVEL)
        if error > city_range_km:
            us_city_wrong += 1
            wrong_block += block_level
        else:
            correct_block += block_level
    return ArinCaseStudy(
        database=name,
        arin_total=arin_total,
        arin_non_us=arin_non_us,
        pulled_to_us=pulled,
        pulled_city_level=pulled_city,
        pulled_city_far=pulled_far,
        us_total=us_total,
        us_arin_city_covered=us_city_covered,
        us_arin_city_wrong=us_city_wrong,
        wrong_block_level=wrong_block,
        correct_block_level=correct_block,
    )


def arin_case_study(
    database: GeoDatabase | str,
    ground_truth: GroundTruthSet,
    whois: TeamCymruWhois,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
    far_km: float = FAR_ERROR_KM,
    frame: LookupFrame | None = None,
) -> ArinCaseStudy:
    """Compute the §5.2.3 dissection for one database.

    With ``frame`` (covering every ground-truth address), ``database``
    may be just the column name; coverage, city level, block level, and
    distances all come from the frame's columns.
    """
    if frame is not None:
        name = database if isinstance(database, str) else database.name
        return _arin_case_from_frame(
            name, frame, ground_truth, whois, city_range_km, far_km
        )
    arin_total = arin_non_us = pulled = pulled_city = pulled_far = 0
    us_total = 0
    us_city_covered = us_city_wrong = 0
    wrong_block = correct_block = 0
    for record in ground_truth:
        is_arin = whois.lookup(record.address).registry is RIR.ARIN
        truly_us = record.country == "US"
        if truly_us:
            us_total += 1
        if not is_arin:
            continue
        arin_total += 1
        entry = database.lookup_entry(record.address)
        answer = entry.record if entry is not None else None
        if not truly_us:
            arin_non_us += 1
            if answer is not None and answer.country == "US":
                pulled += 1
                if answer.has_city and answer.has_coordinates:
                    pulled_city += 1
                    if answer.location.distance_km(record.location) > far_km:
                        pulled_far += 1
            continue
        # ARIN addresses genuinely in the US: the block-level dissection.
        if answer is None or not answer.has_city or not answer.has_coordinates:
            continue
        us_city_covered += 1
        error = answer.location.distance_km(record.location)
        if error > city_range_km:
            us_city_wrong += 1
            wrong_block += entry.is_block_level
        else:
            correct_block += entry.is_block_level
    return ArinCaseStudy(
        database=database.name,
        arin_total=arin_total,
        arin_non_us=arin_non_us,
        pulled_to_us=pulled,
        pulled_city_level=pulled_city,
        pulled_city_far=pulled_far,
        us_total=us_total,
        us_arin_city_covered=us_city_covered,
        us_arin_city_wrong=us_city_wrong,
        wrong_block_level=wrong_block,
        correct_block_level=correct_block,
    )
