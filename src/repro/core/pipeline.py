"""The end-to-end study: every §4/§5/§6 analysis in one run.

:class:`RouterGeolocationStudy` takes the datasets a researcher would
assemble (database snapshots, the Ark-topo-router address list, the two
ground-truth sets, a whois service, a gazetteer) and produces a
:class:`StudyResult` holding every artifact of the paper's evaluation:
coverage, consistency, the city-range calibration, Table 1, the accuracy
breakdowns behind Figures 2–5, the ARIN case study, and the
recommendations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.core.accuracy import (
    DatabaseAccuracy,
    evaluate_all,
    evaluate_by_country,
    evaluate_by_rir,
    evaluate_by_source,
    evaluate_database,
    split_by_country,
    split_by_rir,
    top_countries,
)
from repro.core.arincase import ArinCaseStudy, arin_case_study
from repro.core.cityrange import CityRangeCalibration, calibrate_city_range
from repro.core.consistency import (
    ConsistencyReport,
    _consistency_direct,
    consistency_analysis,
)
from repro.core.coverage import CoverageReport, coverage_analysis, coverage_table
from repro.core.frame import LookupFrame
from repro.core.recommendations import Recommendation, build_recommendations
from repro.core.report import (
    percent,
    render_cdf_grid,
    render_table,
    render_table_markdown,
)
from repro.geo.gazetteer import Gazetteer
from repro.geo.rir import RIR, RIR_ORDER
from repro.geodb.database import GeoDatabase
from repro.groundtruth.record import GroundTruthSet, GroundTruthSource, merge_ground_truth
from repro.groundtruth.stats import GroundTruthRow, table1
from repro.net.ip import IPv4Address
from repro.net.registry import TeamCymruWhois
from repro.obs.manifest import RunManifest, sha256_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NOOP_TRACER, NoopTracer, Tracer

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class StudyResult:
    """Everything the paper's evaluation sections report."""

    coverage: Mapping[str, CoverageReport]
    consistency: ConsistencyReport
    city_range: CityRangeCalibration
    table1_rows: tuple[GroundTruthRow, GroundTruthRow]
    overall: Mapping[str, DatabaseAccuracy]
    by_rir: Mapping[RIR, Mapping[str, DatabaseAccuracy]]
    top20: tuple[tuple[str, int], ...]
    by_country: Mapping[str, Mapping[str, DatabaseAccuracy]]
    by_source: Mapping[GroundTruthSource, Mapping[str, DatabaseAccuracy]]
    arin_cases: Mapping[str, ArinCaseStudy]
    recommendations: tuple[Recommendation, ...]
    city_range_km: float
    #: Telemetry of the run that produced this result; ``None`` on
    #: uninstrumented runs (the zero-cost default).
    manifest: RunManifest | None = None

    def render_summary(self) -> str:
        """A multi-section text report mirroring the paper's evaluation."""
        sections = []

        sections.append(
            render_table(
                ["database", "country cov", "city cov"],
                [
                    [r.database, percent(r.country_rate), percent(r.city_rate)]
                    for r in sorted(self.coverage.values(), key=lambda r: r.database)
                ],
                title="== Coverage over Ark-topo-router (§5.1) ==",
            )
        )

        pair_rows = [
            [f"{p.database_a} vs {p.database_b}", p.compared, percent(p.rate)]
            for p in self.consistency.country_pairs
        ]
        pair_rows.append(
            [
                "ALL databases agree",
                self.consistency.all_agree_compared,
                percent(self.consistency.all_agree_rate),
            ]
        )
        sections.append(
            render_table(
                ["pair", "compared", "agreement"],
                pair_rows,
                title="== Country-level pairwise agreement (§5.1) ==",
            )
        )

        sections.append(
            render_cdf_grid(
                {
                    f"{p.database_a} vs {p.database_b}": p.ecdf
                    for p in self.consistency.city_pairs
                },
                title=(
                    "== Figure 1: pairwise coordinate distance over the "
                    f"{self.consistency.city_subset_size}-address all-city subset =="
                ),
            )
        )

        sections.append(
            "== Table 1: ground-truth datasets ==\n"
            + "\n".join(row.render() for row in self.table1_rows)
        )

        sections.append(
            render_table(
                ["database", "country acc", "country cov", "city acc", "city cov"],
                [
                    [
                        a.database,
                        percent(a.country_accuracy),
                        percent(a.country_coverage),
                        percent(a.city_accuracy),
                        percent(a.city_coverage),
                    ]
                    for a in sorted(self.overall.values(), key=lambda a: a.database)
                ],
                title="== Ground-truth accuracy (§5.2.1) ==",
            )
        )

        sections.append(
            render_cdf_grid(
                {name: a.city_error_ecdf for name, a in self.overall.items()},
                title="== Figure 2: geolocation error vs ground truth ==",
            )
        )

        rir_rows = []
        for rir in RIR_ORDER:
            results = self.by_rir.get(rir)
            if not results:
                continue
            for name in sorted(results):
                accuracy = results[name]
                rir_rows.append(
                    [
                        rir.value,
                        name,
                        accuracy.country_covered,
                        percent(1 - accuracy.country_accuracy),
                        percent(accuracy.city_accuracy),
                        percent(accuracy.city_coverage),
                    ]
                )
        sections.append(
            render_table(
                ["RIR", "database", "n", "country err", "city acc", "city cov"],
                rir_rows,
                title="== Figure 3 / Figure 5: regional breakdown (§5.2.2) ==",
            )
        )

        country_rows = []
        for country, count in self.top20:
            results = self.by_country.get(country, {})
            country_rows.append(
                [country, count]
                + [
                    percent(results[name].country_accuracy) if name in results else "-"
                    for name in sorted(self.overall)
                ]
            )
        sections.append(
            render_table(
                ["country", "n"] + sorted(self.overall),
                country_rows,
                title="== Figure 4: country-level accuracy, top-20 countries ==",
            )
        )

        source_rows = []
        for source, results in self.by_source.items():
            for name in sorted(results):
                accuracy = results[name]
                source_rows.append(
                    [
                        source.value,
                        name,
                        percent(accuracy.city_accuracy),
                        percent(accuracy.city_coverage),
                    ]
                )
        sections.append(
            render_table(
                ["ground truth", "database", "city acc", "city cov"],
                source_rows,
                title="== §5.2.4: accuracy by ground-truth source ==",
            )
        )

        sections.append(
            "== Recommendations (§6) ==\n"
            + "\n".join(r.render() for r in self.recommendations)
        )
        return "\n\n".join(sections)

    def render_markdown(self) -> str:
        """A publication-ready Markdown report of the key results."""
        sections = ["# Router geolocation study report", ""]

        sections.append(
            render_table_markdown(
                ["database", "country coverage", "city coverage"],
                [
                    [r.database, percent(r.country_rate), percent(r.city_rate)]
                    for r in sorted(self.coverage.values(), key=lambda r: r.database)
                ],
                title="Coverage over the router-interface population",
            )
        )

        pair_rows = [
            [f"{p.database_a} vs {p.database_b}", percent(p.rate)]
            for p in self.consistency.country_pairs
        ] + [["all databases agree", percent(self.consistency.all_agree_rate)]]
        sections.append(
            render_table_markdown(
                ["pair", "country agreement"],
                pair_rows,
                title="Cross-database consistency",
            )
        )

        sections.append(
            render_table_markdown(
                ["database", "country accuracy", "city accuracy", "city coverage",
                 "median city error"],
                [
                    [
                        a.database,
                        percent(a.country_accuracy),
                        percent(a.city_accuracy),
                        percent(a.city_coverage),
                        (
                            f"{a.city_error_ecdf.median():.0f} km"
                            if a.city_error_ecdf.n
                            else "—"
                        ),
                    ]
                    for a in sorted(self.overall.values(), key=lambda a: a.database)
                ],
                title="Accuracy against ground truth",
            )
        )

        rir_rows = []
        for rir in RIR_ORDER:
            results = self.by_rir.get(rir)
            if not results:
                continue
            for name in sorted(results):
                accuracy = results[name]
                rir_rows.append(
                    [
                        rir.value,
                        name,
                        percent(accuracy.country_accuracy),
                        percent(accuracy.city_accuracy),
                    ]
                )
        sections.append(
            render_table_markdown(
                ["RIR", "database", "country accuracy", "city accuracy"],
                rir_rows,
                title="Regional breakdown",
            )
        )

        sections.append("### Recommendations\n")
        for recommendation in self.recommendations:
            sections.append(f"- {recommendation.text}")
        return "\n\n".join(sections)


class RouterGeolocationStudy:
    """Runs the full evaluation over assembled datasets.

    ``tracer`` and ``metrics`` opt the run into observability: every
    analysis stage gets a timing span, the databases and whois service
    emit ``geodb.*``/``whois.*`` counters, and the produced
    :class:`StudyResult` carries a :class:`~repro.obs.manifest.RunManifest`.
    Both default to no-ops, so an uninstrumented run executes the exact
    pre-observability code path.
    """

    def __init__(
        self,
        *,
        databases: Mapping[str, GeoDatabase],
        ark_addresses: Sequence[IPv4Address],
        dns_ground_truth: GroundTruthSet,
        rtt_ground_truth: GroundTruthSet,
        whois: TeamCymruWhois,
        gazetteer: Gazetteer,
        city_range_km: float = DEFAULT_CITY_RANGE_KM,
        case_study_database: str = "MaxMind-Paid",
        tracer: Tracer | NoopTracer | None = None,
        metrics: MetricsRegistry | None = None,
        scenario_config=None,
        frame: LookupFrame | None = None,
        frame_workers: int | None = None,
    ):
        if not databases:
            raise ValueError("at least one database is required")
        if city_range_km <= 0:
            raise ValueError(f"city range must be positive: {city_range_km!r}")
        if case_study_database not in databases:
            raise ValueError(
                f"case-study database {case_study_database!r} is not one of "
                f"{sorted(databases)}"
            )
        self.databases = dict(databases)
        self.ark_addresses = list(ark_addresses)
        self.dns_ground_truth = dns_ground_truth
        self.rtt_ground_truth = rtt_ground_truth
        self.ground_truth = merge_ground_truth(dns_ground_truth, rtt_ground_truth)
        self.whois = whois
        self.gazetteer = gazetteer
        self.city_range_km = city_range_km
        #: Which database §5.2.3's ARIN case study examines by default
        #: (the paper singles out MaxMind-Paid); ``run(all_databases=True)``
        #: studies every snapshot instead.
        self.case_study_database = case_study_database
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics
        self.scenario_config = scenario_config
        #: Prebuilt lookup frame (e.g. from ``build_scenario``); built
        #: lazily on the first frame-mode run when absent.
        self._frame = frame
        #: Process fan-out for frame construction (None/1 = serial).
        self.frame_workers = frame_workers
        if metrics is not None:
            for database in self.databases.values():
                database.attach_metrics(metrics)
            whois.attach_metrics(metrics)

    @classmethod
    def from_scenario(
        cls,
        scenario,
        *,
        tracer: Tracer | NoopTracer | None = None,
        metrics: MetricsRegistry | None = None,
        frame_workers: int | None = None,
    ) -> "RouterGeolocationStudy":
        """Build from a :class:`repro.scenario.build.Scenario`.

        A frame the scenario already built (``build_scenario(...,
        build_frame=True)``) is reused; otherwise the study builds its own
        on the first frame-mode run.
        """
        return cls(
            databases=scenario.databases,
            ark_addresses=scenario.ark_dataset.addresses,
            dns_ground_truth=scenario.dns_ground_truth.dataset,
            rtt_ground_truth=scenario.rtt_ground_truth.dataset,
            whois=scenario.internet.whois,
            gazetteer=scenario.internet.gazetteer,
            tracer=tracer,
            metrics=metrics,
            scenario_config=scenario.config,
            frame=getattr(scenario, "frame", None),
            frame_workers=frame_workers,
        )

    def _manifest_config(self) -> dict:
        config = {"city_range_km": self.city_range_km}
        if self.scenario_config is not None:
            config["seed"] = self.scenario_config.seed
            config["scale"] = self.scenario_config.scale
            config["routing"] = self.scenario_config.routing
        config["databases"] = sorted(self.databases)
        config["case_study_database"] = self.case_study_database
        return config

    def _build_manifest(self, result: "StudyResult") -> RunManifest:
        digests = {
            "summary_sha256": sha256_digest(result.render_summary()),
            "markdown_sha256": sha256_digest(result.render_markdown()),
        }
        return RunManifest.build(
            config=self._manifest_config(),
            spans=self.tracer.roots,
            metrics=self.metrics,
            digests=digests,
        )

    def lookup_frame(self) -> LookupFrame:
        """The study's shared lookup frame, building it on first use.

        The pool is every address any stage resolves: the Ark interface
        population plus the merged ground-truth addresses.
        """
        if self._frame is None:
            self._frame = LookupFrame.build(
                self.databases,
                [*self.ark_addresses, *self.ground_truth.addresses()],
                workers=self.frame_workers,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        return self._frame

    # -- accuracy stages: columnar off the frame, per-lookup without ---------

    def _accuracy_overall(self, frame: LookupFrame | None):
        if frame is not None:
            return evaluate_all(
                frame, self.ground_truth, city_range_km=self.city_range_km
            )
        return {
            name: evaluate_database(
                database, self.ground_truth, city_range_km=self.city_range_km
            )
            for name, database in self.databases.items()
        }

    def _accuracy_by_rir(self, frame: LookupFrame | None):
        if frame is not None:
            return evaluate_by_rir(
                frame, self.ground_truth, self.whois,
                city_range_km=self.city_range_km,
            )
        return {
            rir: {
                name: evaluate_database(
                    database, subset_set,
                    subset=rir.value, city_range_km=self.city_range_km,
                )
                for name, database in self.databases.items()
            }
            for rir, subset_set in split_by_rir(self.ground_truth, self.whois).items()
        }

    def _accuracy_by_country(self, frame: LookupFrame | None, countries: tuple[str, ...]):
        if frame is not None:
            return evaluate_by_country(
                frame, self.ground_truth,
                countries=countries, city_range_km=self.city_range_km,
            )
        subsets = split_by_country(self.ground_truth)
        return {
            country: {
                name: evaluate_database(
                    database, subsets[country],
                    subset=country, city_range_km=self.city_range_km,
                )
                for name, database in self.databases.items()
            }
            for country in countries
            if country in subsets
        }

    def _accuracy_by_source(self, frame: LookupFrame | None):
        if frame is not None:
            return evaluate_by_source(
                frame, self.ground_truth, city_range_km=self.city_range_km
            )
        return {
            source: {
                name: evaluate_database(
                    database, self.ground_truth.by_source(source),
                    subset=source.value, city_range_km=self.city_range_km,
                )
                for name, database in self.databases.items()
            }
            for source in GroundTruthSource
            if len(self.ground_truth.by_source(source))
        }

    def run(self, *, all_databases: bool = False, use_frame: bool = True) -> StudyResult:
        """Execute every analysis (a few seconds at default scales).

        The ARIN case study (§5.2.3) runs only over
        ``self.case_study_database`` unless ``all_databases=True``.

        ``use_frame`` (the default) resolves the whole address pool once
        into a shared :class:`~repro.core.frame.LookupFrame` and runs
        every stage off its columns; ``use_frame=False`` keeps the
        original one-lookup-per-use path (the reference for equivalence
        tests and the direct-vs-frame benchmark).  Output is
        byte-identical either way.
        """
        tracer = self.tracer
        with tracer.span("run") as run_span:
            frame = self.lookup_frame() if use_frame else None
            with tracer.span("coverage") as span:
                if frame is not None:
                    coverage = coverage_table(frame, self.ark_addresses)
                else:
                    coverage = {
                        name: coverage_analysis(database, self.ark_addresses)
                        for name, database in self.databases.items()
                    }
                span.count(len(self.ark_addresses))
            with tracer.span("consistency") as span:
                if frame is not None:
                    consistency = consistency_analysis(frame, self.ark_addresses)
                else:
                    consistency = _consistency_direct(
                        self.databases, self.ark_addresses
                    )
                span.count(len(self.ark_addresses))
            with tracer.span("city_range") as span:
                city_range = calibrate_city_range(
                    self.databases, self.gazetteer, self.city_range_km
                )
                span.set(city_range_km=self.city_range_km)
            with tracer.span("table1") as span:
                table1_rows = table1(
                    self.dns_ground_truth, self.rtt_ground_truth, self.whois
                )
                span.count(len(self.ground_truth))
            with tracer.span("accuracy_overall") as span:
                overall = self._accuracy_overall(frame)
                span.count(len(self.ground_truth))
            with tracer.span("accuracy_by_rir") as span:
                by_rir = self._accuracy_by_rir(frame)
                span.set(rirs=len(by_rir))
            with tracer.span("accuracy_by_country") as span:
                top20 = top_countries(self.ground_truth, 20)
                by_country = self._accuracy_by_country(
                    frame, tuple(country for country, _ in top20)
                )
                span.count(len(by_country))
            with tracer.span("accuracy_by_source") as span:
                by_source = self._accuracy_by_source(frame)
                span.set(sources=len(by_source))
            with tracer.span("arin_case_study") as span:
                case_names = (
                    list(self.databases)
                    if all_databases
                    else [self.case_study_database]
                )
                arin_cases = {
                    name: arin_case_study(
                        name if frame is not None else self.databases[name],
                        self.ground_truth,
                        self.whois,
                        city_range_km=self.city_range_km,
                        frame=frame,
                    )
                    for name in case_names
                }
                span.count(len(arin_cases))
            with tracer.span("recommendations") as span:
                recommendations = build_recommendations(
                    coverage, overall, by_rir, by_source
                )
                span.count(len(recommendations))
            run_span.set(databases=len(self.databases))

        result = StudyResult(
            coverage=coverage,
            consistency=consistency,
            city_range=city_range,
            table1_rows=table1_rows,
            overall=overall,
            by_rir=by_rir,
            top20=top20,
            by_country=by_country,
            by_source=by_source,
            arin_cases=arin_cases,
            recommendations=recommendations,
            city_range_km=self.city_range_km,
        )
        if tracer.enabled or self.metrics is not None:
            result = replace(result, manifest=self._build_manifest(result))
        return result
