"""Text rendering of tables and CDFs.

Benchmarks regenerate the paper's tables and figures as text: aligned
tables for the count-style artifacts and log-x sampled CDF grids for the
distance figures.  No plotting dependency is needed — the *numbers* are
the reproduction; the renderings make them readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.cdf import LOG_DISTANCE_GRID_KM, Ecdf


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """An aligned, pipe-separated text table."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf_grid(
    series: Mapping[str, Ecdf],
    *,
    thresholds: Sequence[float] = LOG_DISTANCE_GRID_KM,
    title: str | None = None,
    marker_km: float | None = 40.0,
) -> str:
    """CDF values sampled on a log distance grid, one row per series.

    The ``marker_km`` column is flagged with ``*`` — the paper's vertical
    red line at the 40 km city range.
    """
    headers = ["series (n)"] + [
        f"≤{threshold:g}km" + ("*" if marker_km is not None and threshold == marker_km else "")
        for threshold in thresholds
    ]
    rows = []
    for label in sorted(series):
        ecdf = series[label]
        rows.append(
            [f"{label} ({ecdf.n})"]
            + [f"{ecdf.fraction_within(threshold):.3f}" for threshold in thresholds]
        )
    return render_table(headers, rows, title=title)


def render_table_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """A GitHub-flavoured Markdown table (for READMEs and reports)."""
    cells = [[str(cell) for cell in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Uniform percentage formatting for report rows."""
    return f"{value:.1%}"
