"""Dependency-free SVG rendering of the paper's CDF figures.

The text CDF grids (:func:`repro.core.report.render_cdf_grid`) carry the
numbers; this module draws them the way the paper does — CDF curves on a
log-x distance axis with the vertical red line at the 40 km city range
(Figures 1, 2, 5a, 5b).  Output is a standalone SVG string, written next
to the benchmark artifacts so the reproduction ships *figures*, not just
tables, without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.cdf import Ecdf

#: Colour-blind-safe categorical palette (Okabe–Ito).
PALETTE: tuple[str, ...] = (
    "#0072B2",  # blue
    "#E69F00",  # orange
    "#009E73",  # green
    "#CC79A7",  # magenta
    "#56B4E9",  # sky
    "#D55E00",  # vermillion
    "#F0E442",  # yellow
    "#000000",  # black
)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _decimate(values: Sequence[float], limit: int = 400) -> list[float]:
    if len(values) <= limit:
        return list(values)
    step = len(values) / limit
    return [values[min(len(values) - 1, int(i * step))] for i in range(limit)] + [
        values[-1]
    ]


class _LogCdfCanvas:
    """Coordinate mapping and primitive emission for one figure."""

    def __init__(
        self,
        width: int,
        height: int,
        x_min: float,
        x_max: float,
    ):
        self.width = width
        self.height = height
        self.margin_left = 62
        self.margin_right = 16
        self.margin_top = 34
        self.margin_bottom = 46
        self.x_min = x_min
        self.x_max = x_max
        self.parts: list[str] = []

    @property
    def plot_width(self) -> float:
        return self.width - self.margin_left - self.margin_right

    @property
    def plot_height(self) -> float:
        return self.height - self.margin_top - self.margin_bottom

    def x(self, value: float) -> float:
        clamped = min(max(value, self.x_min), self.x_max)
        span = math.log10(self.x_max) - math.log10(self.x_min)
        frac = (math.log10(clamped) - math.log10(self.x_min)) / span
        return self.margin_left + frac * self.plot_width

    def y(self, fraction: float) -> float:
        return self.margin_top + (1.0 - fraction) * self.plot_height

    def line(self, x1, y1, x2, y2, stroke, width=1.0, dash=None, opacity=1.0):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}"'
            f' stroke="{stroke}" stroke-width="{width}"{dash_attr}'
            f' opacity="{opacity}" />'
        )

    def text(self, x, y, content, *, size=11, anchor="middle", fill="#333", rotate=None):
        transform = f' transform="rotate(-90 {x:.1f} {y:.1f})"' if rotate else ""
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}"'
            f' font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}"'
            f' fill="{fill}"{transform}>{_escape(content)}</text>'
        )

    def polyline(self, points: list[tuple[float, float]], stroke: str):
        coords = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}"'
            ' stroke-width="1.8" />'
        )


def render_cdf_svg(
    series: Mapping[str, Ecdf],
    *,
    title: str,
    x_label: str = "Distance (km)",
    y_label: str = "CDF",
    marker_x: float | None = 40.0,
    marker_label: str = "40 km",
    width: int = 680,
    height: int = 420,
    x_min: float = 0.1,
    x_max: float = 20000.0,
) -> str:
    """Draw CDF curves on a log-x axis, paper style.

    Empty series are skipped; an entirely empty figure still renders its
    axes (useful when a database answered nothing for a subset).
    """
    if x_min <= 0 or x_max <= x_min:
        raise ValueError("x_min must be positive and smaller than x_max")
    canvas = _LogCdfCanvas(width, height, x_min, x_max)
    canvas.parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}"'
        f' viewBox="0 0 {width} {height}">'
    )
    canvas.parts.append(f'<rect width="{width}" height="{height}" fill="white" />')
    canvas.text(width / 2, 20, title, size=13, fill="#111")

    # Gridlines at decades; y gridlines every 0.2.
    decade = math.ceil(math.log10(x_min))
    while 10**decade <= x_max:
        x_position = canvas.x(10**decade)
        canvas.line(
            x_position, canvas.margin_top, x_position,
            height - canvas.margin_bottom, "#dddddd", 0.8,
        )
        label = f"{10**decade:g}"
        canvas.text(x_position, height - canvas.margin_bottom + 16, label, size=10)
        decade += 1
    for tick in range(6):
        fraction = tick / 5
        y_position = canvas.y(fraction)
        canvas.line(
            canvas.margin_left, y_position, width - canvas.margin_right,
            y_position, "#dddddd", 0.8,
        )
        canvas.text(canvas.margin_left - 8, y_position + 4, f"{fraction:.1f}",
                    size=10, anchor="end")

    # Axes.
    canvas.line(canvas.margin_left, canvas.margin_top, canvas.margin_left,
                height - canvas.margin_bottom, "#333", 1.2)
    canvas.line(canvas.margin_left, height - canvas.margin_bottom,
                width - canvas.margin_right, height - canvas.margin_bottom,
                "#333", 1.2)
    canvas.text(width / 2, height - 12, x_label, size=12)
    canvas.text(18, height / 2, y_label, size=12, rotate=True)

    # City-range marker (the paper's vertical red line).
    if marker_x is not None and x_min <= marker_x <= x_max:
        x_position = canvas.x(marker_x)
        canvas.line(x_position, canvas.margin_top, x_position,
                    height - canvas.margin_bottom, "#CC0000", 1.2, dash="5,4")
        canvas.text(x_position + 4, canvas.margin_top + 12, marker_label,
                    size=10, anchor="start", fill="#CC0000")

    # Curves.
    legend_y = canvas.margin_top + 8
    for index, label in enumerate(series):
        ecdf = series[label]
        colour = PALETTE[index % len(PALETTE)]
        if ecdf.n:
            values = _decimate(ecdf.values)
            points = []
            previous_fraction = 0.0
            for value in values:
                fraction = ecdf.fraction_within(value)
                x_position = canvas.x(max(value, x_min))
                points.append((x_position, canvas.y(previous_fraction)))
                points.append((x_position, canvas.y(fraction)))
                previous_fraction = fraction
            points.append((canvas.x(x_max), canvas.y(previous_fraction)))
            canvas.polyline(points, colour)
        # Legend entry (top-left, inside the plot).
        canvas.line(canvas.margin_left + 10, legend_y, canvas.margin_left + 34,
                    legend_y, colour, 2.5)
        canvas.text(canvas.margin_left + 40, legend_y + 4,
                    f"{label} (n={ecdf.n})", size=10, anchor="start")
        legend_y += 16

    canvas.parts.append("</svg>")
    return "\n".join(canvas.parts)
