"""City-range calibration (§4).

Before comparing coordinates, the paper answers two questions: (a) do the
databases really assign *city* coordinates when they name a city?
(checked against GeoNames: >99% within 40 km), and (b) do different
databases assign compatible coordinates to the *same* city? (>99% within
40 km).  Those two facts justify using a 40 km radius as "the same city"
throughout the study.  This module reruns both checks against any set of
database snapshots and a gazetteer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.geo.gazetteer import Gazetteer, UnknownCityError
from repro.geodb.database import GeoDatabase

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class GazetteerCheck:
    """One database's city coordinates vs the gazetteer."""

    database: str
    matched: int
    unmatched: int  # city names with no gazetteer entry
    within_range: int

    @property
    def within_rate(self) -> float:
        return self.within_range / self.matched if self.matched else 0.0


@dataclass(frozen=True, slots=True)
class CrossDatabaseCheck:
    """Same-city coordinates across database pairs."""

    pairs_compared: int
    within_range: int

    @property
    def within_rate(self) -> float:
        return self.within_range / self.pairs_compared if self.pairs_compared else 0.0


@dataclass(frozen=True, slots=True)
class CityRangeCalibration:
    """§4's evidence for the 40 km city range."""

    threshold_km: float
    gazetteer_checks: tuple[GazetteerCheck, ...]
    cross_database: CrossDatabaseCheck

    @property
    def justified(self) -> bool:
        """True when both checks clear the paper's 99% bar."""
        return (
            all(check.within_rate > 0.99 for check in self.gazetteer_checks)
            and self.cross_database.within_rate > 0.99
        )


def _city_coordinates(database: GeoDatabase) -> dict[tuple[str, str], object]:
    """(city, country) → one representative coordinate per database."""
    coordinates = {}
    for entry in database:
        record = entry.record
        if record.city is None or not record.has_coordinates:
            continue
        coordinates.setdefault((record.city, record.country), record.location)
    return coordinates


def calibrate_city_range(
    databases: Mapping[str, GeoDatabase],
    gazetteer: Gazetteer,
    threshold_km: float = DEFAULT_CITY_RANGE_KM,
) -> CityRangeCalibration:
    """Run both §4 checks."""
    if threshold_km <= 0:
        raise ValueError(f"threshold must be positive: {threshold_km!r}")
    per_db_coords = {
        name: _city_coordinates(database) for name, database in databases.items()
    }

    checks = []
    for name in sorted(databases):
        matched = unmatched = within = 0
        for (city_name, country), location in sorted(per_db_coords[name].items()):
            try:
                city = gazetteer.match(city_name, country)
            except UnknownCityError:
                unmatched += 1
                continue
            matched += 1
            if location.distance_km(city.location) <= threshold_km:
                within += 1
        checks.append(
            GazetteerCheck(
                database=name, matched=matched, unmatched=unmatched, within_range=within
            )
        )

    pairs = within = 0
    for name_a, name_b in itertools.combinations(sorted(databases), 2):
        coords_a = per_db_coords[name_a]
        coords_b = per_db_coords[name_b]
        for key in sorted(set(coords_a) & set(coords_b)):
            pairs += 1
            if coords_a[key].distance_km(coords_b[key]) <= threshold_km:
                within += 1

    return CityRangeCalibration(
        threshold_km=threshold_km,
        gazetteer_checks=tuple(checks),
        cross_database=CrossDatabaseCheck(pairs_compared=pairs, within_range=within),
    )
