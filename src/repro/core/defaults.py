"""Default-coordinate detection in database answers.

§3.2 removes RIPE Atlas probes sitting on *default country coordinates* —
the geographic centre of a country, "often assigned to IP addresses due
to the lack of specific location information".  Databases do exactly the
same: when only the country is known, the published coordinates are the
country centroid (MaxMind documents this; the paper cites the convention
via [4, 9, 18]).

A study that feeds raw coordinates into distance computations without
checking for defaults will treat these country-level answers as precise
points hundreds of km from anything real.  This analysis measures how
much of a database's answer surface is default coordinates, so users can
filter them the way the paper filtered probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.frame import HAS_CITY, HAS_COORDS, HAS_COUNTRY, LookupFrame, as_frame
from repro.geo.coordinates import GeoPoint
from repro.geo.countries import COUNTRIES, UnknownCountryError
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address

DEFAULT_RADIUS_KM = 5.0


@dataclass(frozen=True, slots=True)
class DefaultCoordinateReport:
    """Prevalence of country-centroid answers for one database."""

    database: str
    answers_with_coordinates: int
    on_default_coordinates: int
    #: ...of which carried a city name anyway (suspicious records).
    city_level_defaults: int

    @property
    def default_rate(self) -> float:
        if not self.answers_with_coordinates:
            return 0.0
        return self.on_default_coordinates / self.answers_with_coordinates


def is_default_coordinate(
    country: str, location: GeoPoint, *, radius_km: float = DEFAULT_RADIUS_KM
) -> bool:
    """True when ``location`` is the country's centre-of-country default."""
    try:
        info = COUNTRIES.get(country)
    except UnknownCountryError:
        return False
    centroid = GeoPoint(info.centroid_lat, info.centroid_lon)
    return location.distance_km(centroid) <= radius_km


_NEEDED = HAS_COORDS | HAS_COUNTRY


def detect_default_coordinates(
    database: GeoDatabase | str,
    addresses: Iterable[IPv4Address],
    *,
    radius_km: float = DEFAULT_RADIUS_KM,
    frame: LookupFrame | None = None,
) -> DefaultCoordinateReport:
    """Scan a database's answers over a population for default coordinates.

    With ``frame``, ``database`` may be just the column name and the scan
    reads the pre-resolved columns.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive: {radius_km!r}")
    with_coords = on_default = city_defaults = 0
    if frame is not None:
        name = database if isinstance(database, str) else database.name
        column = frame.column(name)
        flags = column.flags
        country_ids = column.country_ids
        lats = column.lats
        lons = column.lons
        country_of = frame.countries.value_of
        for position in frame.positions(list(addresses)):
            value = flags[position]
            if value & _NEEDED != _NEEDED:
                continue
            with_coords += 1
            if is_default_coordinate(
                country_of(country_ids[position]),
                GeoPoint(lats[position], lons[position]),
                radius_km=radius_km,
            ):
                on_default += 1
                if value & HAS_CITY:
                    city_defaults += 1
        return DefaultCoordinateReport(
            database=name,
            answers_with_coordinates=with_coords,
            on_default_coordinates=on_default,
            city_level_defaults=city_defaults,
        )
    for address in addresses:
        record = database.lookup(address)
        if record is None or not record.has_coordinates or record.country is None:
            continue
        with_coords += 1
        if is_default_coordinate(record.country, record.location, radius_km=radius_km):
            on_default += 1
            if record.has_city:
                city_defaults += 1
    return DefaultCoordinateReport(
        database=database.name,
        answers_with_coordinates=with_coords,
        on_default_coordinates=on_default,
        city_level_defaults=city_defaults,
    )


def default_coordinate_table(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    addresses: Iterable[IPv4Address],
    *,
    radius_km: float = DEFAULT_RADIUS_KM,
) -> dict[str, DefaultCoordinateReport]:
    """The default-coordinate scan for every database.

    ``databases`` may be a raw mapping (resolved into a frame once) or a
    prebuilt :class:`~repro.core.frame.LookupFrame`.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive: {radius_km!r}")
    pool = list(addresses)
    frame = as_frame(databases, pool)
    return {
        name: detect_default_coordinates(name, pool, radius_km=radius_km, frame=frame)
        for name in frame.names
    }
