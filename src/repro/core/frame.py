"""Columnar lookup frame: resolve every address once, share it everywhere.

The study pipeline asks the same question — "what does database D say
about address A?" — from ten different analysis stages, and before this
module each stage re-ran the longest-prefix match for every address it
touched.  At the paper's 1.64 M-address Ark scale that redundancy *is*
the wall time of the study.

:class:`LookupFrame` removes it structurally.  A frame resolves a
deduplicated address pool against every database **exactly once**,
through the compiled interval form
(:func:`~repro.geodb.intervals.sweep_entry_intervals` — one C-level
bisect per address instead of a 33-table hash walk; prebuilt
:class:`~repro.serve.index.CompiledIndex` objects are consumed as-is),
and stores the answers as parallel columns keyed by address *position*:

* ``flags`` — one byte per address: coverage bitmask (covered /
  has-country / has-city / has-coordinates / block-level entry);
* ``country_ids`` / ``city_ids`` — ``array('i')`` of ids into a shared
  interned :class:`StringTable` (−1 = absent), so cross-database
  agreement checks compare machine integers, not strings;
* ``lats`` / ``lons`` — ``array('d')`` coordinates (NaN when absent);
* ``record_ids`` — ids into the database's deduplicated
  :class:`~repro.geodb.record.GeoRecord` table, for the few callers that
  need the full record object back.

Every analysis stage (coverage, consistency, accuracy, majority vote,
defaults, router-level, the ARIN case study) accepts a frame in place of
its ``Mapping[str, GeoDatabase]`` argument and reads columns instead of
calling ``GeoDatabase.lookup()`` per address; handed raw databases they
build a frame on the fly, so every old signature keeps working and every
answer stays byte-identical to the direct path.

Construction optionally fans out across ``workers`` processes (chunked
over the address pool, ``fork`` start method) and reports ``frame.*``
metrics plus a ``frame_build`` tracing span when instrumented.
"""

from __future__ import annotations

import os
import time
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.geo.coordinates import GeoPoint
from repro.geodb.intervals import sweep_entry_intervals
from repro.geodb.record import GeoRecord
from repro.net.ip import IPv4Address, parse_address
from repro.obs.span import NOOP_TRACER

__all__ = [
    "BLOCK_LEVEL",
    "CITY_LEVEL",
    "COVERED",
    "HAS_CITY",
    "HAS_COORDS",
    "HAS_COUNTRY",
    "FrameColumn",
    "LookupFrame",
    "StringTable",
    "as_frame",
]

#: Flag bits of :attr:`FrameColumn.flags` (one byte per address).
COVERED = 1  #: some entry longest-prefix-matched the address
HAS_COUNTRY = 2  #: the answer carries an ISO country code
HAS_CITY = 4  #: the answer carries a city name
HAS_COORDS = 8  #: the answer carries coordinates
BLOCK_LEVEL = 16  #: the matched entry covers a whole /24 or more (§5.2.3)
#: City-resolution answer: city name *and* coordinates present (§4).
CITY_LEVEL = HAS_CITY | HAS_COORDS

_NAN = float("nan")

#: Below this pool size the fork/pickle overhead of process fan-out
#: cannot pay for itself; construction stays serial.
_MIN_PARALLEL_ADDRESSES = 50_000

#: Sent to workers via fork-inherited module state (see ``_fork_state``).
_fork_state: dict[str, object] = {}


class StringTable:
    """Interned strings with dense integer ids (``-1`` means "absent").

    One table is shared by every column of a frame, so "same id" means
    "same string" *across databases* — country agreement over millions of
    addresses becomes integer comparison.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._values: list[str] = []

    def intern(self, value: str | None) -> int:
        """The id for ``value``, allocating one on first sight (None → −1)."""
        if value is None:
            return -1
        existing = self._ids.get(value)
        if existing is None:
            existing = self._ids[value] = len(self._values)
            self._values.append(value)
        return existing

    def id_of(self, value: str | None, default: int = -2) -> int:
        """The id for ``value`` without allocating; ``default`` if unseen.

        The default sentinel (−2) never equals a stored id *or* the
        "absent" id (−1), so ``column_id == table.id_of(x)`` is exactly
        the string comparison the direct lookup path performs.
        """
        if value is None:
            return -1
        return self._ids.get(value, default)

    def value_of(self, identifier: int) -> str | None:
        """The string behind ``identifier`` (negative ids → ``None``)."""
        if identifier < 0:
            return None
        return self._values[identifier]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._ids


@dataclass(frozen=True, slots=True)
class FrameColumn:
    """One database's lookup answers as parallel arrays.

    Every array has one slot per frame address, indexed by the address's
    frame *position*.  ``records`` is the database's deduplicated record
    table; ``record_ids`` maps positions into it (−1 = no coverage).
    """

    database: str
    flags: bytes
    country_ids: array
    city_ids: array
    lats: array
    lons: array
    record_ids: array
    records: tuple[GeoRecord, ...]

    def record_at(self, position: int) -> GeoRecord | None:
        """The full answer record at ``position`` (``None`` = no coverage)."""
        record_id = self.record_ids[position]
        return self.records[record_id] if record_id >= 0 else None

    def location_at(self, position: int) -> GeoPoint | None:
        """The answer coordinates at ``position`` as a :class:`GeoPoint`."""
        if not self.flags[position] & HAS_COORDS:
            return None
        return GeoPoint(self.lats[position], self.lons[position])

    def __len__(self) -> int:
        return len(self.flags)


def _entry_tables(rows, countries: StringTable, cities: StringTable):
    """Per-entry derived columns, indexed by *slot* (entry id + 1; slot 0
    is the shared miss row), so resolving an address is one bisect plus
    O(1) table reads.  ``rows`` holds one ``(prefixlen, record,
    record_id)`` triple per entry id."""
    size = len(rows) + 1
    t_flags = bytearray(size)
    t_country = array("i", [-1]) * size
    t_city = array("i", [-1]) * size
    t_lat = array("d", [_NAN]) * size
    t_lon = array("d", [_NAN]) * size
    t_record = array("i", [-1]) * size
    for entry_id, (prefixlen, record, record_id) in enumerate(rows):
        flags = COVERED
        if record.country is not None:
            flags |= HAS_COUNTRY
        if record.city is not None:
            flags |= HAS_CITY
        if record.latitude is not None:
            flags |= HAS_COORDS
        if prefixlen <= 24:
            flags |= BLOCK_LEVEL
        slot = entry_id + 1
        t_flags[slot] = flags
        t_country[slot] = countries.intern(record.country)
        t_city[slot] = cities.intern(record.city)
        if record.latitude is not None:
            t_lat[slot] = record.latitude
            t_lon[slot] = record.longitude
        t_record[slot] = record_id
    return bytes(t_flags), t_country, t_city, t_lat, t_lon, t_record


def _prepare_database(database) -> tuple[list[int], list[int], list, tuple]:
    """One database's resolution state: ``(starts, interval_slots, rows,
    records)``.

    ``interval_slots`` maps a ``bisect_right(starts, addr)`` result to an
    entry slot (0 = miss); ``rows`` holds ``(prefixlen, record,
    record_id)`` per entry id, in address order of first appearance —
    the same numbering :meth:`CompiledIndex.compile` produces, so a frame
    built from raw databases matches one built from compiled indexes
    byte for byte.

    A prebuilt :class:`~repro.serve.index.CompiledIndex` (anything with
    ``parts()``, duck-typed so this module never imports the serving
    layer) is consumed as-is; a
    :class:`~repro.geodb.database.GeoDatabase` goes through
    :func:`~repro.geodb.intervals.sweep_entry_intervals` directly — no
    interval probing, no prefix-string rendering, no serving-side probe
    closures.
    """
    parts = getattr(database, "parts", None)
    if parts is not None:
        starts, answers, entries, records = parts()
        records = tuple(records)
        interval_slots = [0, *(answer + 1 for answer in answers)]
        rows = [
            (int(prefix.rsplit("/", 1)[1]), records[record_id], record_id)
            for prefix, record_id in entries
        ]
        return starts, interval_slots, rows, records

    starts, interval_entries = sweep_entry_intervals(database)
    slot_ids: dict[int, int] = {}  # id(entry) → slot
    record_ids: dict = {}
    records_list: list = []
    rows = []
    interval_slots = [0]
    for entry in interval_entries:
        if entry is None:
            interval_slots.append(0)
            continue
        slot = slot_ids.get(id(entry))
        if slot is None:
            record = entry.record
            record_id = record_ids.get(record)
            if record_id is None:
                record_id = record_ids[record] = len(records_list)
                records_list.append(record)
            slot = slot_ids[id(entry)] = len(rows) + 1
            rows.append((entry.prefix.prefixlen, record, record_id))
        interval_slots.append(slot)
    return starts, interval_slots, rows, tuple(records_list)


def _resolve_slots(starts, interval_slots, ints: Sequence[int], lo: int, hi: int) -> list[int]:
    """Entry slots (entry id + 1; 0 = miss) for ``ints[lo:hi]``: one
    C-level bisect per address."""
    _bisect = bisect_right
    return [interval_slots[_bisect(starts, ints[i])] for i in range(lo, hi)]


def _derive_columns(tables, slots: list[int]):
    """Map resolved entry slots through the per-entry tables → column chunks."""
    t_flags, t_country, t_city, t_lat, t_lon, t_record = tables
    return (
        bytes(map(t_flags.__getitem__, slots)),
        array("i", map(t_country.__getitem__, slots)),
        array("i", map(t_city.__getitem__, slots)),
        array("d", map(t_lat.__getitem__, slots)),
        array("d", map(t_lon.__getitem__, slots)),
        array("i", map(t_record.__getitem__, slots)),
    )


def _resolve_chunk(task):
    """Worker-side resolution of one (database, address-range) chunk.

    State (the shared address integers and per-database probe tables)
    rides in :data:`_fork_state`, inherited copy-on-write through the
    ``fork`` start method — nothing large is pickled per task.
    """
    name, lo, hi = task
    starts, interval_slots, tables = _fork_state["databases"][name]
    slots = _resolve_slots(starts, interval_slots, _fork_state["ints"], lo, hi)
    counts: dict[int, int] = {}
    for slot in slots:
        counts[slot] = counts.get(slot, 0) + 1
    return name, lo, _derive_columns(tables, slots), counts


class LookupFrame:
    """The deduplicated address pool resolved once against every database.

    Build with :meth:`build`; read with :meth:`column` (parallel arrays),
    :meth:`position`/:meth:`positions` (address → row), or the
    per-address conveniences :meth:`lookup`/:meth:`record_at`.  Frames
    are immutable after construction and safe to share across threads.
    """

    __slots__ = (
        "_addresses",
        "_positions",
        "_columns",
        "_countries",
        "_cities",
        "_metrics",
        "_stage_cache",
        "position",
    )

    def __init__(
        self,
        addresses: tuple[IPv4Address, ...],
        positions: Mapping[int, int],
        columns: Mapping[str, FrameColumn],
        countries: StringTable,
        cities: StringTable,
        metrics=None,
    ):
        self._addresses = addresses
        # Keyed by the address *integer*: hashing an int is trivial where
        # hashing an IPv4Address renders a hex string first — at frame
        # scale that difference is visible in every stage.
        self._positions = dict(positions)
        self._columns = dict(columns)
        self._countries = countries
        self._cities = cities
        self._metrics = metrics
        self._stage_cache: dict = {}
        #: Fast position lookup: ``frame.position(address) -> int`` for a
        #: parsed address (KeyError with the address text when the frame
        #: does not contain it is provided by :meth:`positions`; this fast
        #: path raises the raw KeyError and is what hot loops should call).
        self.position = lambda address, _get=self._positions.__getitem__: _get(
            int(address)
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        databases: Mapping[str, object],
        addresses: Iterable[IPv4Address | str | int],
        *,
        workers: int | None = None,
        tracer=None,
        metrics=None,
    ) -> "LookupFrame":
        """Resolve ``addresses`` (deduplicated, first occurrence wins)
        against every database, exactly once each.

        ``databases`` maps names to :class:`~repro.geodb.database.GeoDatabase`
        snapshots (compiled here) or prebuilt
        :class:`~repro.serve.index.CompiledIndex` objects (used as-is).
        ``workers`` > 1 fans the resolution out across processes (``fork``
        platforms only; falls back to serial elsewhere) — worthwhile from
        roughly 10^5 addresses up.  ``tracer`` wraps construction in a
        ``frame_build`` span; ``metrics`` receives ``frame.*`` counters
        plus the same ``geodb.*`` counter family a direct lookup pass
        would have emitted, so instrumented runs keep their telemetry.
        When ``metrics`` is ``None``, each database's own attached
        registry (``attach_metrics``) is used instead, if any.
        """
        if tracer is None:
            tracer = NOOP_TRACER
        started = time.perf_counter()
        with tracer.span("frame_build") as span:
            positions: dict[int, int] = {}
            pool_list: list[IPv4Address] = []
            for raw in addresses:
                address = parse_address(raw)
                key = int(address)
                if key not in positions:
                    positions[key] = len(pool_list)
                    pool_list.append(address)
            pool = tuple(pool_list)
            ints = list(positions)  # keys in insertion = position order

            countries = StringTable()
            cities = StringTable()
            prepared: dict[str, tuple] = {}
            record_tables: dict[str, tuple[GeoRecord, ...]] = {}
            resolutions: dict[str, list[str]] = {}
            prefix_lengths: dict[str, list[int]] = {}
            per_database_metrics: dict[str, object] = {}
            for name, database in databases.items():
                starts, interval_slots, rows, records = _prepare_database(database)
                prepared[name] = (
                    starts,
                    interval_slots,
                    _entry_tables(rows, countries, cities),
                )
                record_tables[name] = records
                registry = (
                    metrics if metrics is not None else getattr(database, "_metrics", None)
                )
                per_database_metrics[name] = registry
                if registry is not None:
                    # The per-slot mirror tables exist only to replay the
                    # geodb.* counters; skip them on uninstrumented runs.
                    resolutions[name] = ["none"] + [
                        record.resolution.value for _, record, _ in rows
                    ]
                    prefix_lengths[name] = [0] + [prefixlen for prefixlen, _, _ in rows]

            chunks = cls._resolve_all(prepared, ints, workers)

            columns: dict[str, FrameColumn] = {}
            for name in databases:
                parts, counts = chunks[name]
                flags = b"".join(chunk[0] for chunk in parts)
                country_ids = array("i")
                city_ids = array("i")
                lats = array("d")
                lons = array("d")
                record_ids = array("i")
                for chunk in parts:
                    country_ids.extend(chunk[1])
                    city_ids.extend(chunk[2])
                    lats.extend(chunk[3])
                    lons.extend(chunk[4])
                    record_ids.extend(chunk[5])
                columns[name] = FrameColumn(
                    database=name,
                    flags=flags,
                    country_ids=country_ids,
                    city_ids=city_ids,
                    lats=lats,
                    lons=lons,
                    record_ids=record_ids,
                    records=record_tables[name],
                )
                registry = per_database_metrics[name]
                if registry is not None:
                    _mirror_lookup_metrics(
                        registry,
                        name,
                        counts,
                        resolutions[name],
                        prefix_lengths[name],
                    )

            span.count(len(pool))
            span.set(databases=len(columns), workers=workers or 1)

        if metrics is not None:
            metrics.inc("frame.builds")
            metrics.inc("frame.addresses", len(pool))
            metrics.inc("frame.columns", len(columns))
            metrics.observe("frame.build_seconds", time.perf_counter() - started)
        return cls(pool, positions, columns, countries, cities, metrics=metrics)

    @staticmethod
    def _resolve_all(prepared, ints, workers):
        """Resolve the pool per database, serially or via a fork pool.

        Returns ``{name: (ordered column chunks, slot counts)}``; the
        chunk order is deterministic, so parallel construction yields
        byte-identical columns to the serial path.
        """
        names = list(prepared)
        effective = int(workers or 1)
        if effective > 1 and len(ints) >= _MIN_PARALLEL_ADDRESSES:
            try:
                import multiprocessing

                context = multiprocessing.get_context("fork")
            except (ImportError, ValueError):
                context = None
            if context is not None:
                chunk_size = max(10_000, -(-len(ints) // (effective * 4)))
                tasks = [
                    (name, lo, min(lo + chunk_size, len(ints)))
                    for name in names
                    for lo in range(0, len(ints), chunk_size)
                ]
                _fork_state["ints"] = ints
                _fork_state["databases"] = prepared
                try:
                    with context.Pool(processes=effective) as pool:
                        results = pool.map(_resolve_chunk, tasks)
                except OSError:
                    results = None  # sandboxed / fork-restricted: fall back
                finally:
                    _fork_state.clear()
                if results is not None:
                    chunks = {name: ([], {}) for name in names}
                    for name, _lo, parts, counts in results:  # tasks are in order
                        chunks[name][0].append(parts)
                        totals = chunks[name][1]
                        for slot, count in counts.items():
                            totals[slot] = totals.get(slot, 0) + count
                    return chunks
        chunks = {}
        for name, (starts, interval_slots, tables) in prepared.items():
            slots = _resolve_slots(starts, interval_slots, ints, 0, len(ints))
            counts: dict[int, int] = {}
            for slot in slots:
                counts[slot] = counts.get(slot, 0) + 1
            chunks[name] = ([_derive_columns(tables, slots)], counts)
        return chunks

    # -- access --------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Database names, in the order the source mapping listed them."""
        return tuple(self._columns)

    @property
    def addresses(self) -> tuple[IPv4Address, ...]:
        """The deduplicated address pool, in frame-position order."""
        return self._addresses

    @property
    def countries(self) -> StringTable:
        """The shared interned country-code table."""
        return self._countries

    @property
    def cities(self) -> StringTable:
        """The shared interned city-name table."""
        return self._cities

    def column(self, name: str) -> FrameColumn:
        """The parallel answer arrays for one database."""
        column = self._columns.get(name)
        if column is None:
            raise KeyError(f"no such database in frame: {name!r} (have {sorted(self._columns)})")
        if self._metrics is not None:
            self._metrics.inc("frame.column_reads", database=name)
        return column

    @property
    def stage_cache(self) -> dict:
        """Scratch memo space for analysis stages.

        Keyed by stage-chosen tuples (convention: lead with the stage
        name); lives exactly as long as the frame.  Lets the accuracy
        breakdowns share one per-record scoring pass across overall /
        by-RIR / by-country / by-source without re-deriving it.
        """
        return self._stage_cache

    def positions(self, addresses: Iterable[IPv4Address | str | int]) -> list[int]:
        """Frame positions for ``addresses`` (order and duplicates kept).

        Accepts anything :func:`~repro.net.ip.parse_address` accepts;
        already-parsed addresses skip the parse.
        """
        position = self._positions.__getitem__
        result: list[int] = []
        for address in addresses:
            try:
                result.append(position(int(address)))
            except (KeyError, TypeError, ValueError):
                try:
                    result.append(position(int(parse_address(address))))
                except KeyError:
                    raise KeyError(f"address not in frame: {address!r}") from None
        return result

    def lookup(self, name: str, address: IPv4Address | str | int) -> GeoRecord | None:
        """The answer record for one address — signature-compatible with
        ``GeoDatabase.lookup`` (convenience/equivalence path, not the hot
        loop; analyses should read columns)."""
        return self.column(name).record_at(self._positions[int(parse_address(address))])

    def __len__(self) -> int:
        return len(self._addresses)

    def __contains__(self, address: IPv4Address | str | int) -> bool:
        try:
            return int(address) in self._positions
        except (TypeError, ValueError):
            try:
                return int(parse_address(address)) in self._positions
            except (ValueError, TypeError):
                return False

    def __iter__(self) -> Iterator[IPv4Address]:
        return iter(self._addresses)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"LookupFrame({len(self._addresses)} addresses × "
            f"{len(self._columns)} databases)"
        )


def _mirror_lookup_metrics(metrics, name, counts, resolutions, prefix_lengths) -> None:
    """Emit the ``geodb.*`` counters a direct lookup pass would have.

    The frame replaces per-address ``GeoDatabase.lookup`` calls, so an
    instrumented run would otherwise lose its lookup telemetry; this
    replays the same counter family from the aggregated slot counts.
    """
    if metrics is None:
        return
    total = sum(counts.values())
    metrics.inc("geodb.lookups", total, database=name)
    misses = counts.get(0, 0)
    if misses:
        metrics.inc("geodb.misses", misses, database=name)
    by_resolution: dict[str, int] = {}
    for slot, count in counts.items():
        if slot == 0:
            continue
        resolution = resolutions[slot]
        by_resolution[resolution] = by_resolution.get(resolution, 0) + count
        metrics.observe_many("geodb.prefix_length", prefix_lengths[slot], count, database=name)
    for resolution, count in sorted(by_resolution.items()):
        metrics.inc("geodb.resolution", count, database=name, resolution=resolution)


def as_frame(
    source,
    addresses: Iterable[IPv4Address | str | int],
    *,
    workers: int | None = None,
    tracer=None,
    metrics=None,
) -> LookupFrame:
    """``source`` itself when it already is a :class:`LookupFrame`, else a
    frame built from the database mapping over ``addresses``.

    This is the dispatch helper behind every analysis stage's dual
    signature: stages call it on their first argument and then run the
    columnar implementation either way.
    """
    if isinstance(source, LookupFrame):
        return source
    return LookupFrame.build(source, addresses, workers=workers, tracer=tracer, metrics=metrics)
