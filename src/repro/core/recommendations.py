"""Recommendation engine (§6).

The paper closes with practical advice for researchers choosing a
database to geolocate routers.  Instead of hard-coding the 2016
conclusions, this engine re-derives each recommendation from the measured
results, so it stays truthful when run against different snapshots,
scenarios, or future databases — while producing the paper's bullets when
fed the paper-calibrated scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.accuracy import DatabaseAccuracy
from repro.core.coverage import CoverageReport
from repro.geo.rir import RIR
from repro.groundtruth.record import GroundTruthSource


@dataclass(frozen=True, slots=True)
class Recommendation:
    """One actionable finding, with the numbers that justify it."""

    key: str
    text: str
    metrics: Mapping[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """The recommendation as a bullet line with its metrics appended."""
        details = ", ".join(f"{k}={v:.1%}" for k, v in sorted(self.metrics.items()))
        return f"* {self.text}" + (f"  [{details}]" if details else "")


def _combined_city_score(accuracy: DatabaseAccuracy) -> float:
    """Coverage-weighted city accuracy: the 'best combination' criterion."""
    return accuracy.city_accuracy * accuracy.city_coverage


def build_recommendations(
    coverage: Mapping[str, CoverageReport],
    overall: Mapping[str, DatabaseAccuracy],
    by_rir: Mapping[RIR, Mapping[str, DatabaseAccuracy]],
    by_source: Mapping[GroundTruthSource, Mapping[str, DatabaseAccuracy]],
    *,
    commercial_pairs: Mapping[str, str] | None = None,
) -> tuple[Recommendation, ...]:
    """Derive §6-style recommendations from study results.

    ``commercial_pairs`` maps a commercial edition to its free sibling
    (default: MaxMind-Paid → MaxMind-GeoLite) for the paid-vs-free advice.
    """
    if not overall:
        raise ValueError("no evaluation results to recommend from")
    if commercial_pairs is None:
        commercial_pairs = {"MaxMind-Paid": "MaxMind-GeoLite"}
    recommendations: list[Recommendation] = []

    # 1. Overall winner by combined city coverage+accuracy.
    winner = max(sorted(overall), key=lambda name: _combined_city_score(overall[name]))
    winner_acc = overall[winner]
    caveat = ""
    dns_results = by_source.get(GroundTruthSource.DNS, {})
    rtt_results = by_source.get(GroundTruthSource.RTT, {})
    if (
        winner in dns_results
        and winner in rtt_results
        and dns_results[winner].city_accuracy > rtt_results[winner].city_accuracy
    ):
        caveat = (
            f" Treat its {dns_results[winner].city_accuracy:.1%} city accuracy on the"
            " DNS-based data as an upper bound: it appears to benefit from hostname"
            " location hints."
        )
    recommendations.append(
        Recommendation(
            key="best-overall",
            text=(
                f"If a geolocation database is the only option, use {winner}: it has"
                f" the best combination of city-level accuracy and coverage.{caveat}"
            ),
            metrics={
                "city_accuracy": winner_acc.city_accuracy,
                "city_coverage": winner_acc.city_coverage,
                "country_accuracy": winner_acc.country_accuracy,
            },
        )
    )

    # 2. Low-city-coverage databases with otherwise decent accuracy.
    for name in sorted(overall):
        accuracy = overall[name]
        if name == winner:
            continue
        if accuracy.city_coverage < 0.5 and accuracy.city_accuracy >= 0.5:
            recommendations.append(
                Recommendation(
                    key=f"low-coverage:{name}",
                    text=(
                        f"Do not rely on {name} when high city-level coverage is"
                        f" required: it answers city queries for only"
                        f" {accuracy.city_coverage:.1%} of router addresses, though"
                        f" the answers it does give are right {accuracy.city_accuracy:.1%}"
                        " of the time."
                    ),
                    metrics={
                        "city_coverage": accuracy.city_coverage,
                        "city_accuracy": accuracy.city_accuracy,
                    },
                )
            )

    # 3. Paid vs free editions.
    for paid, free in sorted(commercial_pairs.items()):
        if paid not in overall or free not in overall:
            continue
        paid_acc, free_acc = overall[paid], overall[free]
        if _combined_city_score(paid_acc) > _combined_city_score(free_acc):
            recommendations.append(
                Recommendation(
                    key=f"paid-over-free:{paid}",
                    text=(
                        f"Prefer {paid} over {free} when city-level results matter:"
                        " the commercial edition names more cities at equal or better"
                        " accuracy."
                    ),
                    metrics={
                        "paid_city_coverage": paid_acc.city_coverage,
                        "free_city_coverage": free_acc.city_coverage,
                    },
                )
            )

    # 4. Databases whose city answers are mostly wrong.
    for name in sorted(overall):
        accuracy = overall[name]
        if accuracy.city_coverage >= 0.9 and accuracy.city_accuracy < 0.5:
            recommendations.append(
                Recommendation(
                    key=f"avoid:{name}",
                    text=(
                        f"Do not use {name} for router geolocation: despite its"
                        " near-complete city coverage, its city answers are wrong"
                        f" more often than right ({accuracy.city_accuracy:.1%} accurate)."
                    ),
                    metrics={
                        "city_coverage": accuracy.city_coverage,
                        "city_accuracy": accuracy.city_accuracy,
                    },
                )
            )

    # 5. Budget advice: are the non-winner databases comparable at country level?
    others = [overall[name] for name in sorted(overall) if name != winner]
    if len(others) >= 2:
        rates = [accuracy.country_accuracy for accuracy in others]
        if max(rates) - min(rates) < 0.05:
            recommendations.append(
                Recommendation(
                    key="budget-country-level",
                    text=(
                        "If price is a concern and roughly"
                        f" {sum(rates) / len(rates):.0%} country-level accuracy is"
                        " acceptable, the free and low-cost databases are comparable —"
                        " but verify per-country accuracy first, which can be far lower."
                    ),
                    metrics={"mean_country_accuracy": sum(rates) / len(rates)},
                )
            )

    # 6. Region warning: the RIR where city accuracy collapses for everyone.
    # Regions with only a handful of ground-truth addresses are skipped —
    # the paper reads its own 52-address LACNIC column the same way.
    if by_rir:
        region_scores = {
            rir: max(results[name].city_accuracy for name in results)
            for rir, results in by_rir.items()
            if results and max(results[name].total for name in results) >= 30
        }
    else:
        region_scores = {}
    if region_scores:
        worst_rir = min(
            sorted(region_scores, key=lambda rir: rir.value),
            key=lambda rir: region_scores[rir],
        )
        if region_scores[worst_rir] < 0.78:
            best_there = max(
                sorted(by_rir[worst_rir]),
                key=lambda name: by_rir[worst_rir][name].city_accuracy,
            )
            recommendations.append(
                Recommendation(
                    key=f"region-warning:{worst_rir.value}",
                    text=(
                        f"Do not trust city-level geolocation in {worst_rir.value}"
                        f" regardless of the database: even the best there ({best_there})"
                        f" places only {region_scores[worst_rir]:.0%} of router"
                        " interfaces within 40 km of their true locations."
                    ),
                    metrics={"best_city_accuracy": region_scores[worst_rir]},
                )
            )

    return tuple(recommendations)
