"""Router-level (alias-set) consistency of database answers.

§2.1 notes the 1.64 M interfaces belong to ~485 K routers per CAIDA's
ITDK alias resolution, but the paper's analyses stay at IP level.  This
analysis uses the alias sets the same data enables: all interfaces of one
physical router are, by definition, in exactly one place, so a database
that scatters a router's aliases across distant cities is measurably
inconsistent *without any ground truth at all* — a self-check any
researcher can run with just an ITDK snapshot and a database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.cdf import Ecdf
from repro.core.frame import HAS_COORDS, LookupFrame, as_frame
from repro.geo.coordinates import GeoPoint
from repro.geodb.database import GeoDatabase
from repro.topology.itdk import AliasMap

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class RouterConsistencyReport:
    """How coherently one database locates multi-interface routers."""

    database: str
    routers_evaluated: int  # alias sets with ≥2 located interfaces
    consistent_routers: int  # all aliases within the city range
    scatter_ecdf: Ecdf  # max pairwise distance per alias set
    country_split_routers: int  # aliases in more than one country

    @property
    def consistency_rate(self) -> float:
        if not self.routers_evaluated:
            return 0.0
        return self.consistent_routers / self.routers_evaluated

    @property
    def country_split_rate(self) -> float:
        if not self.routers_evaluated:
            return 0.0
        return self.country_split_routers / self.routers_evaluated


def _node_answers(database, alias_map, frame):
    """Yield per-alias-set located points and country keys.

    Produces ``(located GeoPoints, country keys)`` per node, where the
    country keys are strings on the direct path and interned ids on the
    frame path — only set cardinality is consumed either way.
    """
    if frame is not None:
        name = database if isinstance(database, str) else database.name
        column = frame.column(name)
        flags = column.flags
        country_ids = column.country_ids
        lats = column.lats
        lons = column.lons
        for addresses in alias_map.nodes.values():
            located = []
            countries = set()
            for position in frame.positions(addresses):
                value = flags[position]
                if not value & HAS_COORDS:
                    continue
                located.append(GeoPoint(lats[position], lons[position]))
                identifier = country_ids[position]
                if identifier >= 0:
                    countries.add(identifier)
            yield located, countries
        return
    for addresses in alias_map.nodes.values():
        located = []
        countries = set()
        for address in addresses:
            record = database.lookup(address)
            if record is None or not record.has_coordinates:
                continue
            located.append(record.location)
            if record.country is not None:
                countries.add(record.country)
        yield located, countries


def router_consistency(
    database: GeoDatabase | str,
    alias_map: AliasMap,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
    frame: LookupFrame | None = None,
) -> RouterConsistencyReport:
    """Measure alias-set coherence of a database's answers.

    With ``frame`` (covering every alias address), ``database`` may be
    just the column name and no lookups run.
    """
    if city_range_km <= 0:
        raise ValueError(f"city range must be positive: {city_range_km!r}")
    evaluated = consistent = country_split = 0
    scatters = []
    for located, countries in _node_answers(database, alias_map, frame):
        if len(located) < 2:
            continue
        evaluated += 1
        max_scatter = 0.0
        for i, a in enumerate(located):
            for b in located[i + 1 :]:
                distance = a.distance_km(b)
                if distance > max_scatter:
                    max_scatter = distance
        scatters.append(max_scatter)
        if max_scatter <= city_range_km:
            consistent += 1
        if len(countries) > 1:
            country_split += 1
    return RouterConsistencyReport(
        database=database if isinstance(database, str) else database.name,
        routers_evaluated=evaluated,
        consistent_routers=consistent,
        scatter_ecdf=Ecdf(scatters),
        country_split_routers=country_split,
    )


def router_consistency_table(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    alias_map: AliasMap,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, RouterConsistencyReport]:
    """Alias-set coherence for every database over one alias map.

    ``databases`` may be a raw mapping (the alias addresses are resolved
    into a frame once) or a prebuilt frame covering them.
    """
    if city_range_km <= 0:
        raise ValueError(f"city range must be positive: {city_range_km!r}")
    frame = as_frame(
        databases,
        (address for addresses in alias_map.nodes.values() for address in addresses),
    )
    return {
        name: router_consistency(
            name, alias_map, city_range_km=city_range_km, frame=frame
        )
        for name in frame.names
    }
