"""Database coverage analysis (methodology question (a), §4).

Coverage is the probability of getting *any* answer for a router address,
reported separately at country and city resolution — §5.1's finding that
the MaxMind editions cover 99.3% of Ark addresses at country level but
only 43%/61.6% at city level is a coverage result, not an accuracy one.

Every entry point accepts either raw databases (resolved on the fly) or a
prebuilt :class:`~repro.core.frame.LookupFrame`, in which case coverage
is counted straight off the frame's flag column without a single lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.frame import CITY_LEVEL, HAS_COUNTRY, LookupFrame, as_frame
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """Coverage of one database over one address population."""

    database: str
    total: int
    country_covered: int
    city_covered: int

    @property
    def country_rate(self) -> float:
        return self.country_covered / self.total if self.total else 0.0

    @property
    def city_rate(self) -> float:
        return self.city_covered / self.total if self.total else 0.0

    def render(self) -> str:
        """One-line text summary of this coverage result."""
        return (
            f"{self.database:<18} country {self.country_rate:6.1%}   "
            f"city {self.city_rate:6.1%}   (n={self.total})"
        )


def _coverage_from_column(database: str, flags: Iterable[int], total: int) -> CoverageReport:
    """Count coverage bits over a frame flag column (or a slice of one)."""
    country = city = 0
    for value in flags:
        if value & HAS_COUNTRY:
            country += 1
        if value & CITY_LEVEL == CITY_LEVEL:
            city += 1
    return CoverageReport(
        database=database, total=total, country_covered=country, city_covered=city
    )


def coverage_analysis(
    database: GeoDatabase | str,
    addresses: Iterable[IPv4Address],
    *,
    frame: LookupFrame | None = None,
) -> CoverageReport:
    """Count country- and city-resolution answers over a population.

    Pass ``frame`` (with ``database`` then being the column name or the
    database itself) to read the pre-resolved flag column instead of
    running one lookup per address.
    """
    if frame is not None:
        name = database if isinstance(database, str) else database.name
        flags = frame.column(name).flags
        positions = frame.positions(addresses)
        return _coverage_from_column(
            name, map(flags.__getitem__, positions), len(positions)
        )
    total = country = city = 0
    for address in addresses:
        total += 1
        record = database.lookup(address)
        if record is None:
            continue
        if record.has_country:
            country += 1
        if record.has_city and record.has_coordinates:
            city += 1
    return CoverageReport(
        database=database.name, total=total, country_covered=country, city_covered=city
    )


def coverage_table(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    addresses: Iterable[IPv4Address],
) -> dict[str, CoverageReport]:
    """Coverage for every database over the same population.

    ``databases`` may be a raw database mapping (a frame is built on the
    fly, one resolution pass total) or an existing
    :class:`~repro.core.frame.LookupFrame` covering ``addresses``.
    """
    pool = list(addresses)
    frame = as_frame(databases, pool)
    if len(pool) == len(frame) and not isinstance(databases, LookupFrame):
        # freshly built, positions are exactly 0..n-1 in pool order
        return {
            name: _coverage_from_column(name, frame.column(name).flags, len(frame))
            for name in frame.names
        }
    positions = frame.positions(pool)
    return {
        name: _coverage_from_column(
            name,
            map(frame.column(name).flags.__getitem__, positions),
            len(positions),
        )
        for name in frame.names
    }
