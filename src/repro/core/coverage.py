"""Database coverage analysis (methodology question (a), §4).

Coverage is the probability of getting *any* answer for a router address,
reported separately at country and city resolution — §5.1's finding that
the MaxMind editions cover 99.3% of Ark addresses at country level but
only 43%/61.6% at city level is a coverage result, not an accuracy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """Coverage of one database over one address population."""

    database: str
    total: int
    country_covered: int
    city_covered: int

    @property
    def country_rate(self) -> float:
        return self.country_covered / self.total if self.total else 0.0

    @property
    def city_rate(self) -> float:
        return self.city_covered / self.total if self.total else 0.0

    def render(self) -> str:
        """One-line text summary of this coverage result."""
        return (
            f"{self.database:<18} country {self.country_rate:6.1%}   "
            f"city {self.city_rate:6.1%}   (n={self.total})"
        )


def coverage_analysis(
    database: GeoDatabase, addresses: Iterable[IPv4Address]
) -> CoverageReport:
    """Count country- and city-resolution answers over a population."""
    total = country = city = 0
    for address in addresses:
        total += 1
        record = database.lookup(address)
        if record is None:
            continue
        if record.has_country:
            country += 1
        if record.has_city and record.has_coordinates:
            city += 1
    return CoverageReport(
        database=database.name, total=total, country_covered=country, city_covered=city
    )


def coverage_table(
    databases: Mapping[str, GeoDatabase], addresses: Iterable[IPv4Address]
) -> dict[str, CoverageReport]:
    """Coverage for every database over the same population."""
    pool = list(addresses)
    return {
        name: coverage_analysis(database, pool)
        for name, database in databases.items()
    }
