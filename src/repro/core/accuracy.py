"""Ground-truth accuracy evaluation (§5.2).

The answer to methodology question (c): what is the probability a
database's answer is *correct*?  Correctness is ISO-code equality at
country level and distance ≤ the 40 km city range at city level, always
measured against the ground-truth dataset.  Breakdowns by RIR (§5.2.2,
Figures 3/5), by country (Figure 4), and by ground-truth source (§5.2.4)
all reuse the same per-subset evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.cdf import Ecdf
from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase
from repro.groundtruth.record import GroundTruthSet, GroundTruthSource
from repro.net.registry import TeamCymruWhois

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class DatabaseAccuracy:
    """One database evaluated against one ground-truth (sub)set."""

    database: str
    subset: str
    total: int
    country_covered: int
    country_correct: int
    city_covered: int
    city_correct: int
    city_error_ecdf: Ecdf

    @property
    def country_coverage(self) -> float:
        return self.country_covered / self.total if self.total else 0.0

    @property
    def country_accuracy(self) -> float:
        """Fraction correct among covered (the paper's accuracy metric)."""
        return self.country_correct / self.country_covered if self.country_covered else 0.0

    @property
    def city_coverage(self) -> float:
        return self.city_covered / self.total if self.total else 0.0

    @property
    def city_accuracy(self) -> float:
        return self.city_correct / self.city_covered if self.city_covered else 0.0

    @property
    def country_incorrect(self) -> int:
        return self.country_covered - self.country_correct

    def render(self) -> str:
        """One-line text summary of this accuracy result."""
        return (
            f"{self.database:<18} [{self.subset}] "
            f"country {self.country_accuracy:6.1%} acc / {self.country_coverage:6.1%} cov   "
            f"city {self.city_accuracy:6.1%} acc / {self.city_coverage:6.1%} cov   "
            f"(n={self.total})"
        )


def evaluate_database(
    database: GeoDatabase,
    ground_truth: GroundTruthSet,
    *,
    subset: str = "all",
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> DatabaseAccuracy:
    """Evaluate one database over one ground-truth set."""
    total = country_covered = country_correct = 0
    city_covered = city_correct = 0
    city_errors: list[float] = []
    for record in ground_truth:
        total += 1
        answer = database.lookup(record.address)
        if answer is None:
            continue
        if answer.country is not None:
            country_covered += 1
            country_correct += answer.country == record.country
        if answer.has_city and answer.has_coordinates:
            city_covered += 1
            error = answer.location.distance_km(record.location)
            city_errors.append(error)
            city_correct += error <= city_range_km
    return DatabaseAccuracy(
        database=database.name,
        subset=subset,
        total=total,
        country_covered=country_covered,
        country_correct=country_correct,
        city_covered=city_covered,
        city_correct=city_correct,
        city_error_ecdf=Ecdf(city_errors),
    )


def evaluate_all(
    databases: Mapping[str, GeoDatabase],
    ground_truth: GroundTruthSet,
    *,
    subset: str = "all",
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, DatabaseAccuracy]:
    """Evaluate every database over the same set (Figure 2's series)."""
    return {
        name: evaluate_database(
            database, ground_truth, subset=subset, city_range_km=city_range_km
        )
        for name, database in databases.items()
    }


def split_by_rir(
    ground_truth: GroundTruthSet, whois: TeamCymruWhois
) -> dict[RIR, GroundTruthSet]:
    """Partition a ground-truth set by delegating RIR (via whois)."""
    buckets: dict[RIR, list] = {rir: [] for rir in RIR}
    for record in ground_truth:
        buckets[whois.lookup(record.address).registry].append(record)
    return {
        rir: GroundTruthSet(records)
        for rir, records in buckets.items()
        if records
    }


def evaluate_by_rir(
    databases: Mapping[str, GeoDatabase],
    ground_truth: GroundTruthSet,
    whois: TeamCymruWhois,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[RIR, dict[str, DatabaseAccuracy]]:
    """Figure 3 / Figure 5: per-RIR accuracy for every database."""
    return {
        rir: evaluate_all(
            databases, subset_set, subset=rir.value, city_range_km=city_range_km
        )
        for rir, subset_set in split_by_rir(ground_truth, whois).items()
    }


def split_by_country(ground_truth: GroundTruthSet) -> dict[str, GroundTruthSet]:
    """Partition by the *ground-truth* country of each address."""
    buckets: dict[str, list] = {}
    for record in ground_truth:
        buckets.setdefault(record.country, []).append(record)
    return {country: GroundTruthSet(records) for country, records in buckets.items()}


def top_countries(ground_truth: GroundTruthSet, count: int = 20) -> tuple[tuple[str, int], ...]:
    """The countries with most ground-truth addresses (Figure 4's x-axis)."""
    sizes = {
        country: len(subset)
        for country, subset in split_by_country(ground_truth).items()
    }
    ranked = sorted(sizes.items(), key=lambda item: (-item[1], item[0]))
    return tuple(ranked[:count])


def evaluate_by_country(
    databases: Mapping[str, GeoDatabase],
    ground_truth: GroundTruthSet,
    *,
    countries: tuple[str, ...] | None = None,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, dict[str, DatabaseAccuracy]]:
    """Figure 4: per-country country-level accuracy."""
    subsets = split_by_country(ground_truth)
    selected = countries if countries is not None else tuple(sorted(subsets))
    return {
        country: evaluate_all(
            databases, subsets[country], subset=country, city_range_km=city_range_km
        )
        for country in selected
        if country in subsets
    }


@dataclass(frozen=True, slots=True)
class SharedErrorReport:
    """How much of each database's errors are *shared* errors (§5.2.2).

    The paper found IP2Location-Lite, MaxMind-GeoLite and MaxMind-Paid
    agreeing on the (incorrect) location of 2,277 addresses — 61%, 64%
    and 67% of their respective incorrect answers — fingerprinting a
    common wrong source (registry data) rather than independent mistakes.
    """

    databases: tuple[str, ...]
    #: addresses where every database answers the *same wrong* country
    shared_incorrect: int
    #: per database: its total incorrect country answers over the set
    incorrect_counts: Mapping[str, int]

    def shared_fraction(self, database: str) -> float:
        """Fraction of ``database``'s errors that are shared errors."""
        incorrect = self.incorrect_counts.get(database, 0)
        return self.shared_incorrect / incorrect if incorrect else 0.0


def shared_incorrect_analysis(
    databases: Mapping[str, GeoDatabase],
    ground_truth: GroundTruthSet,
    *,
    subset: tuple[str, ...] = ("IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"),
) -> SharedErrorReport:
    """Count country-level errors shared identically across databases.

    ``subset`` defaults to the paper's three registry-leaning products.
    Only addresses covered by every subset database participate in the
    shared count; per-database incorrect totals count all their errors.
    """
    selected = {name: databases[name] for name in subset if name in databases}
    if len(selected) < 2:
        raise ValueError("shared-error analysis needs at least two databases")
    incorrect_counts = {name: 0 for name in selected}
    shared = 0
    for record in ground_truth:
        answers = {}
        for name, database in selected.items():
            result = database.lookup(record.address)
            country = result.country if result is not None else None
            answers[name] = country
            if country is not None and country != record.country:
                incorrect_counts[name] += 1
        countries = set(answers.values())
        if (
            None not in countries
            and len(countries) == 1
            and countries != {record.country}
        ):
            shared += 1
    return SharedErrorReport(
        databases=tuple(selected),
        shared_incorrect=shared,
        incorrect_counts=incorrect_counts,
    )


def evaluate_by_source(
    databases: Mapping[str, GeoDatabase],
    ground_truth: GroundTruthSet,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[GroundTruthSource, dict[str, DatabaseAccuracy]]:
    """§5.2.4: accuracy split by ground-truth construction method."""
    return {
        source: evaluate_all(
            databases,
            ground_truth.by_source(source),
            subset=source.value,
            city_range_km=city_range_km,
        )
        for source in GroundTruthSource
        if len(ground_truth.by_source(source))
    }
