"""Ground-truth accuracy evaluation (§5.2).

The answer to methodology question (c): what is the probability a
database's answer is *correct*?  Correctness is ISO-code equality at
country level and distance ≤ the 40 km city range at city level, always
measured against the ground-truth dataset.  Breakdowns by RIR (§5.2.2,
Figures 3/5), by country (Figure 4), and by ground-truth source (§5.2.4)
all reuse the same per-subset evaluator.

Every mapping-level entry point also accepts a prebuilt
:class:`~repro.core.frame.LookupFrame`; the breakdown evaluators build
**one** frame over the full ground-truth pool and reuse it for every
subset, so the whole §5.2 battery costs a single resolution pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.cdf import Ecdf
from repro.core.frame import CITY_LEVEL, HAS_COUNTRY, LookupFrame, as_frame
from repro.geo.coordinates import haversine_km
from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase
from repro.groundtruth.record import GroundTruthSet, GroundTruthSource
from repro.net.registry import TeamCymruWhois

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class DatabaseAccuracy:
    """One database evaluated against one ground-truth (sub)set."""

    database: str
    subset: str
    total: int
    country_covered: int
    country_correct: int
    city_covered: int
    city_correct: int
    city_error_ecdf: Ecdf

    @property
    def country_coverage(self) -> float:
        return self.country_covered / self.total if self.total else 0.0

    @property
    def country_accuracy(self) -> float:
        """Fraction correct among covered (the paper's accuracy metric)."""
        return self.country_correct / self.country_covered if self.country_covered else 0.0

    @property
    def city_coverage(self) -> float:
        return self.city_covered / self.total if self.total else 0.0

    @property
    def city_accuracy(self) -> float:
        return self.city_correct / self.city_covered if self.city_covered else 0.0

    @property
    def country_incorrect(self) -> int:
        return self.country_covered - self.country_correct

    def render(self) -> str:
        """One-line text summary of this accuracy result."""
        return (
            f"{self.database:<18} [{self.subset}] "
            f"country {self.country_accuracy:6.1%} acc / {self.country_coverage:6.1%} cov   "
            f"city {self.city_accuracy:6.1%} acc / {self.city_coverage:6.1%} cov   "
            f"(n={self.total})"
        )


def _evaluate_column(
    name: str,
    frame: LookupFrame,
    ground_truth: GroundTruthSet,
    subset: str,
    city_range_km: float,
) -> DatabaseAccuracy:
    """Columnar evaluation: flag tests and interned-id comparisons."""
    column = frame.column(name)
    flags = column.flags
    country_ids = column.country_ids
    lats = column.lats
    lons = column.lons
    country_id_of = frame.countries.id_of
    position_of = frame.position
    total = country_covered = country_correct = 0
    city_covered = city_correct = 0
    city_errors: list[float] = []
    for record in ground_truth:
        total += 1
        position = position_of(record.address)
        value = flags[position]
        if not value:  # no coverage
            continue
        if value & HAS_COUNTRY:
            country_covered += 1
            country_correct += country_ids[position] == country_id_of(record.country)
        if value & CITY_LEVEL == CITY_LEVEL:
            city_covered += 1
            truth = record.location
            error = haversine_km(lats[position], lons[position], truth.lat, truth.lon)
            city_errors.append(error)
            city_correct += error <= city_range_km
    return DatabaseAccuracy(
        database=name,
        subset=subset,
        total=total,
        country_covered=country_covered,
        country_correct=country_correct,
        city_covered=city_covered,
        city_correct=city_correct,
        city_error_ecdf=Ecdf(city_errors),
    )


def evaluate_database(
    database: GeoDatabase | str,
    ground_truth: GroundTruthSet,
    *,
    subset: str = "all",
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
    frame: LookupFrame | None = None,
) -> DatabaseAccuracy:
    """Evaluate one database over one ground-truth set.

    With ``frame`` (covering every ground-truth address) the evaluation
    reads the pre-resolved columns — ``database`` may then be just the
    column name.  Without it, the original one-lookup-per-record path
    runs unchanged.
    """
    if frame is not None:
        name = database if isinstance(database, str) else database.name
        return _evaluate_column(name, frame, ground_truth, subset, city_range_km)
    total = country_covered = country_correct = 0
    city_covered = city_correct = 0
    city_errors: list[float] = []
    for record in ground_truth:
        total += 1
        answer = database.lookup(record.address)
        if answer is None:
            continue
        if answer.country is not None:
            country_covered += 1
            country_correct += answer.country == record.country
        if answer.has_city and answer.has_coordinates:
            city_covered += 1
            error = answer.location.distance_km(record.location)
            city_errors.append(error)
            city_correct += error <= city_range_km
    return DatabaseAccuracy(
        database=database.name,
        subset=subset,
        total=total,
        country_covered=country_covered,
        country_correct=country_correct,
        city_covered=city_covered,
        city_correct=city_correct,
        city_error_ecdf=Ecdf(city_errors),
    )


class _AccuracyScorer:
    """Per-record verdicts for every database over one ground-truth set.

    The §5.2 battery evaluates the *same* records four times — overall,
    then split by RIR, by country, and by source.  The verdicts (country
    covered/correct, city-level error distance) depend only on the
    database answer and the record, not on the split, so this scorer
    computes them once over the base set and each breakdown just
    aggregates its subset.  Cached on the frame's
    :attr:`~repro.core.frame.LookupFrame.stage_cache`, keyed by the base
    set's identity, so every stage of a study shares one pass.
    """

    __slots__ = ("base", "city_range_km", "records", "_index", "_by_db")

    def __init__(self, frame: LookupFrame, ground_truth: GroundTruthSet, city_range_km: float):
        self.base = ground_truth
        self.city_range_km = city_range_km
        records = self.records = list(ground_truth)
        self._index = {int(record.address): i for i, record in enumerate(records)}
        positions = frame.positions(record.address for record in records)
        country_id_of = frame.countries.id_of
        truth_ids = [country_id_of(record.country) for record in records]
        self._by_db: dict[str, tuple[bytearray, bytearray, list[float | None]]] = {}
        for name in frame.names:
            column = frame.column(name)
            flags = column.flags
            country_ids = column.country_ids
            lats = column.lats
            lons = column.lons
            has_country = bytearray(len(records))
            country_ok = bytearray(len(records))
            errors: list[float | None] = [None] * len(records)
            for i, (record, position, truth_id) in enumerate(
                zip(records, positions, truth_ids)
            ):
                value = flags[position]
                if not value:  # no coverage
                    continue
                if value & HAS_COUNTRY:
                    has_country[i] = 1
                    country_ok[i] = country_ids[position] == truth_id
                if value & CITY_LEVEL == CITY_LEVEL:
                    truth = record.location
                    errors[i] = haversine_km(
                        lats[position], lons[position], truth.lat, truth.lon
                    )
            self._by_db[name] = (has_country, country_ok, errors)

    def subset_indices(self, subset_set: GroundTruthSet) -> "range | list[int]":
        """Base-set indices of a subset (KeyError if not a subset)."""
        if subset_set is self.base:
            return range(len(self.records))
        index_of = self._index.__getitem__
        return [index_of(int(record.address)) for record in subset_set]

    def evaluate(
        self, name: str, indices: "range | list[int]", subset: str
    ) -> DatabaseAccuracy:
        has_country, country_ok, errors = self._by_db[name]
        country_covered = country_correct = city_covered = city_correct = 0
        city_errors: list[float] = []
        city_range_km = self.city_range_km
        for i in indices:
            country_covered += has_country[i]
            country_correct += country_ok[i]
            error = errors[i]
            if error is not None:
                city_covered += 1
                city_errors.append(error)
                city_correct += error <= city_range_km
        return DatabaseAccuracy(
            database=name,
            subset=subset,
            total=len(indices),
            country_covered=country_covered,
            country_correct=country_correct,
            city_covered=city_covered,
            city_correct=city_correct,
            city_error_ecdf=Ecdf(city_errors),
        )


def _accuracy_scorer(
    frame: LookupFrame, ground_truth: GroundTruthSet, city_range_km: float
) -> _AccuracyScorer:
    """The (frame, base set) scorer, cached on the frame."""
    key = ("accuracy_scorer", id(ground_truth), city_range_km)
    cached = frame.stage_cache.get(key)
    # The id() in the key could be recycled after the original set is
    # garbage-collected; the scorer pins its base, so identity confirms.
    if cached is not None and cached.base is ground_truth:
        return cached
    scorer = frame.stage_cache[key] = _AccuracyScorer(frame, ground_truth, city_range_km)
    return scorer


def evaluate_all(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    ground_truth: GroundTruthSet,
    *,
    subset: str = "all",
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, DatabaseAccuracy]:
    """Evaluate every database over the same set (Figure 2's series).

    ``databases`` may be a mapping (resolved into a frame once) or an
    existing frame covering at least this ground-truth set.
    """
    frame = as_frame(databases, ground_truth.addresses())
    scorer = _accuracy_scorer(frame, ground_truth, city_range_km)
    indices = scorer.subset_indices(ground_truth)
    return {name: scorer.evaluate(name, indices, subset) for name in frame.names}


def split_by_rir(
    ground_truth: GroundTruthSet, whois: TeamCymruWhois
) -> dict[RIR, GroundTruthSet]:
    """Partition a ground-truth set by delegating RIR (via whois)."""
    buckets: dict[RIR, list] = {rir: [] for rir in RIR}
    for record in ground_truth:
        buckets[whois.lookup(record.address).registry].append(record)
    return {
        rir: GroundTruthSet(records)
        for rir, records in buckets.items()
        if records
    }


def evaluate_by_rir(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    ground_truth: GroundTruthSet,
    whois: TeamCymruWhois,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[RIR, dict[str, DatabaseAccuracy]]:
    """Figure 3 / Figure 5: per-RIR accuracy for every database.

    One frame — and one scoring pass — over the full set serves every
    RIR subset.
    """
    frame = as_frame(databases, ground_truth.addresses())
    scorer = _accuracy_scorer(frame, ground_truth, city_range_km)
    return {
        rir: {
            name: scorer.evaluate(name, indices, rir.value)
            for name in frame.names
        }
        for rir, indices in (
            (rir, scorer.subset_indices(subset_set))
            for rir, subset_set in split_by_rir(ground_truth, whois).items()
        )
    }


def split_by_country(ground_truth: GroundTruthSet) -> dict[str, GroundTruthSet]:
    """Partition by the *ground-truth* country of each address."""
    buckets: dict[str, list] = {}
    for record in ground_truth:
        buckets.setdefault(record.country, []).append(record)
    return {country: GroundTruthSet(records) for country, records in buckets.items()}


def top_countries(ground_truth: GroundTruthSet, count: int = 20) -> tuple[tuple[str, int], ...]:
    """The countries with most ground-truth addresses (Figure 4's x-axis)."""
    sizes = {
        country: len(subset)
        for country, subset in split_by_country(ground_truth).items()
    }
    ranked = sorted(sizes.items(), key=lambda item: (-item[1], item[0]))
    return tuple(ranked[:count])


def evaluate_by_country(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    ground_truth: GroundTruthSet,
    *,
    countries: tuple[str, ...] | None = None,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, dict[str, DatabaseAccuracy]]:
    """Figure 4: per-country country-level accuracy.

    One frame — and one scoring pass — over the full set serves every
    country subset.
    """
    subsets = split_by_country(ground_truth)
    selected = countries if countries is not None else tuple(sorted(subsets))
    frame = as_frame(databases, ground_truth.addresses())
    scorer = _accuracy_scorer(frame, ground_truth, city_range_km)
    return {
        country: {
            name: scorer.evaluate(name, indices, country)
            for name in frame.names
        }
        for country, indices in (
            (country, scorer.subset_indices(subsets[country]))
            for country in selected
            if country in subsets
        )
    }


@dataclass(frozen=True, slots=True)
class SharedErrorReport:
    """How much of each database's errors are *shared* errors (§5.2.2).

    The paper found IP2Location-Lite, MaxMind-GeoLite and MaxMind-Paid
    agreeing on the (incorrect) location of 2,277 addresses — 61%, 64%
    and 67% of their respective incorrect answers — fingerprinting a
    common wrong source (registry data) rather than independent mistakes.
    """

    databases: tuple[str, ...]
    #: addresses where every database answers the *same wrong* country
    shared_incorrect: int
    #: per database: its total incorrect country answers over the set
    incorrect_counts: Mapping[str, int]

    def shared_fraction(self, database: str) -> float:
        """Fraction of ``database``'s errors that are shared errors."""
        incorrect = self.incorrect_counts.get(database, 0)
        return self.shared_incorrect / incorrect if incorrect else 0.0


def shared_incorrect_analysis(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    ground_truth: GroundTruthSet,
    *,
    subset: tuple[str, ...] = ("IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"),
) -> SharedErrorReport:
    """Count country-level errors shared identically across databases.

    ``subset`` defaults to the paper's three registry-leaning products.
    Only addresses covered by every subset database participate in the
    shared count; per-database incorrect totals count all their errors.
    """
    available = databases.names if isinstance(databases, LookupFrame) else databases
    names = [name for name in subset if name in available]
    if len(names) < 2:
        raise ValueError("shared-error analysis needs at least two databases")
    frame = as_frame(
        databases
        if isinstance(databases, LookupFrame)
        else {name: databases[name] for name in names},
        ground_truth.addresses(),
    )
    country_columns = [frame.column(name).country_ids for name in names]
    country_id_of = frame.countries.id_of
    position_of = frame.position
    incorrect_counts = {name: 0 for name in names}
    shared = 0
    for record in ground_truth:
        position = position_of(record.address)
        truth_id = country_id_of(record.country)
        answer_ids = [column[position] for column in country_columns]
        for name, answer_id in zip(names, answer_ids):
            if answer_id >= 0 and answer_id != truth_id:
                incorrect_counts[name] += 1
        first = answer_ids[0]
        if (
            first >= 0
            and first != truth_id
            and all(identifier == first for identifier in answer_ids[1:])
        ):
            shared += 1
    return SharedErrorReport(
        databases=tuple(names),
        shared_incorrect=shared,
        incorrect_counts=incorrect_counts,
    )


def evaluate_by_source(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    ground_truth: GroundTruthSet,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[GroundTruthSource, dict[str, DatabaseAccuracy]]:
    """§5.2.4: accuracy split by ground-truth construction method.

    One frame — and one scoring pass — over the full set serves both
    method subsets.
    """
    frame = as_frame(databases, ground_truth.addresses())
    scorer = _accuracy_scorer(frame, ground_truth, city_range_km)
    result: dict[GroundTruthSource, dict[str, DatabaseAccuracy]] = {}
    for source in GroundTruthSource:
        subset_set = ground_truth.by_source(source)
        if not len(subset_set):
            continue
        indices = scorer.subset_indices(subset_set)
        result[source] = {
            name: scorer.evaluate(name, indices, source.value)
            for name in frame.names
        }
    return result
