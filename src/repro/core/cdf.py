"""Empirical CDFs over distances.

Every figure in the paper's evaluation (Figures 1, 2, 5a, 5b) is a CDF of
great-circle distances plotted on a log-x axis with a vertical marker at
the 40 km city range.  :class:`Ecdf` is the shared representation: exact
(no binning), queryable at any threshold, and renderable as text.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class Ecdf:
    """An exact empirical CDF over non-negative values."""

    def __init__(self, values: Iterable[float]):
        array = np.sort(np.asarray(list(values), dtype=float))
        if array.size and (np.isnan(array).any() or (array < 0).any()):
            raise ValueError("ECDF values must be non-negative and finite")
        self._values = array

    def __eq__(self, other: object) -> bool:
        """Value equality: same sorted sample, same CDF.

        Makes the report dataclasses that embed an ECDF comparable, which
        is what the direct-vs-frame equivalence tests assert on.
        """
        if not isinstance(other, Ecdf):
            return NotImplemented
        return self._values.shape == other._values.shape and bool(
            (self._values == other._values).all()
        )

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    @property
    def n(self) -> int:
        return int(self._values.size)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values.tolist())

    def fraction_within(self, threshold: float) -> float:
        """P(X ≤ threshold); 0.0 for an empty CDF."""
        if self._values.size == 0:
            return 0.0
        return float(np.searchsorted(self._values, threshold, side="right")) / self.n

    def fraction_beyond(self, threshold: float) -> float:
        """P(X > threshold) — e.g. 'more than 29% disagree beyond 40 km'."""
        return 1.0 - self.fraction_within(threshold)

    def quantile(self, q: float) -> float:
        """The q-th quantile (median error = ``quantile(0.5)``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q!r}")
        if self._values.size == 0:
            raise ValueError("quantile of an empty CDF is undefined")
        return float(np.quantile(self._values, q))

    def median(self) -> float:
        """The median value (the 0.5 quantile)."""
        return self.quantile(0.5)

    def fraction_zero(self) -> float:
        """P(X == 0) — Figure 1 truncates identical-coordinate pairs."""
        if self._values.size == 0:
            return 0.0
        return float(np.searchsorted(self._values, 0.0, side="right")) / self.n

    def series(self, thresholds: Sequence[float]) -> tuple[float, ...]:
        """CDF values at the given thresholds (for plotting/benching)."""
        return tuple(self.fraction_within(t) for t in thresholds)


#: Log-spaced distance grid used by the text renderings of the figures.
LOG_DISTANCE_GRID_KM: tuple[float, ...] = (
    0.1, 0.5, 1, 5, 10, 20, 40, 100, 200, 500, 1000, 2000, 5000, 10000,
)
