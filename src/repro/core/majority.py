"""Majority-vote location inference — the prior-work methodology.

Earlier database studies had no router ground truth, so they inferred a
reference location by majority vote across the databases themselves
(Huffaker et al.'s Geocompare; Shavitt & Zilberman) and scored each
database against that inferred reference.  The paper's §5.1 warns that
"agreement between the databases … might also indicate a common incorrect
source of the geolocation information (e.g., registry data)".

This module implements the majority-vote methodology so the warning can
be *quantified*: evaluate databases against the vote, evaluate them
against real ground truth, and measure how much the vote flatters the
databases — and whom it flatters most.

:func:`majority_location` stays duck-typed over any mapping of objects
with a ``lookup`` method (the serving layer feeds it compiled indexes);
the bulk entry points :func:`majority_vote_reference` and
:func:`score_against_majority` additionally accept a prebuilt
:class:`~repro.core.frame.LookupFrame` and read its columns instead of
re-resolving every address per database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.frame import CITY_LEVEL, HAS_COUNTRY, LookupFrame
from repro.geo.coordinates import GeoPoint, haversine_km
from repro.geodb.database import GeoDatabase
from repro.groundtruth.record import GroundTruthSet
from repro.net.ip import IPv4Address

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class MajorityLocation:
    """The vote's answer for one address."""

    address: IPv4Address
    country: str | None  # plurality country (None = no quorum)
    country_votes: int
    location: GeoPoint | None  # medoid of the largest coordinate cluster
    location_votes: int
    voters: int


@dataclass(frozen=True, slots=True)
class MajorityAgreement:
    """One database scored against the majority vote."""

    database: str
    country_compared: int
    country_agreeing: int
    city_compared: int
    city_agreeing: int

    @property
    def country_rate(self) -> float:
        return self.country_agreeing / self.country_compared if self.country_compared else 0.0

    @property
    def city_rate(self) -> float:
        return self.city_agreeing / self.city_compared if self.city_compared else 0.0


def _tally(
    address: IPv4Address,
    answers,
    city_range_km: float,
) -> MajorityLocation:
    """The vote itself, over one address's answer records (None = miss)."""
    countries: dict[str, int] = {}
    coordinates: list[GeoPoint] = []
    voters = 0
    for record in answers:
        if record is None:
            continue
        voters += 1
        if record.country is not None:
            countries[record.country] = countries.get(record.country, 0) + 1
        if record.has_city and record.has_coordinates:
            coordinates.append(record.location)

    country = None
    country_votes = 0
    if countries:
        ranked = sorted(countries.items(), key=lambda kv: (-kv[1], kv[0]))
        top_count = ranked[0][1]
        if len(ranked) == 1 or ranked[1][1] < top_count:
            country, country_votes = ranked[0]

    location = None
    location_votes = 0
    if coordinates:
        best_cluster: list[GeoPoint] = []
        for candidate in coordinates:
            cluster = [
                point
                for point in coordinates
                if candidate.distance_km(point) <= city_range_km
            ]
            if len(cluster) > len(best_cluster):
                best_cluster = cluster
        if len(best_cluster) >= 2:  # a vote needs at least two concurring
            # Medoid: the member minimizing total distance to the cluster.
            location = min(
                best_cluster,
                key=lambda p: (sum(p.distance_km(q) for q in best_cluster), p.lat, p.lon),
            )
            location_votes = len(best_cluster)

    return MajorityLocation(
        address=address,
        country=country,
        country_votes=country_votes,
        location=location,
        location_votes=location_votes,
        voters=voters,
    )


def majority_location(
    address: IPv4Address,
    databases: Mapping[str, GeoDatabase],
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> MajorityLocation:
    """Infer one address's location by vote across the databases.

    Country: plurality of ISO codes (ties → no quorum).  Coordinates: the
    medoid of the largest cluster of answers within the city range of each
    other — the same co-location notion the comparative studies used.
    """
    return _tally(
        address,
        (database.lookup(address) for database in databases.values()),
        city_range_km,
    )


def majority_of_records(
    address: IPv4Address,
    records,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> MajorityLocation:
    """The same vote over already-resolved answer records (``None`` = miss).

    The serving engine resolves every vendor once per request and votes
    over those records directly — this entry point keeps it on the exact
    §5.1 tally (same plurality, clustering, and tie-break rules) instead
    of re-looking addresses up or reimplementing the vote.
    """
    return _tally(address, records, city_range_km)


def majority_vote_reference(
    addresses: Sequence[IPv4Address],
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[IPv4Address, MajorityLocation]:
    """The vote's reference location for every address.

    With a :class:`~repro.core.frame.LookupFrame` the per-address answers
    come from the frame's record columns — no lookups at all.
    """
    if isinstance(databases, LookupFrame):
        frame = databases
        if len(frame.names) < 2:
            raise ValueError("a majority vote needs at least two databases")
        columns = [frame.column(name) for name in frame.names]
        pool = list(addresses)
        return {
            address: _tally(
                address,
                [column.record_at(position) for column in columns],
                city_range_km,
            )
            for address, position in zip(pool, frame.positions(pool))
        }
    if len(databases) < 2:
        raise ValueError("a majority vote needs at least two databases")
    return {
        address: majority_location(address, databases, city_range_km=city_range_km)
        for address in addresses
    }


def score_against_majority(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    reference: Mapping[IPv4Address, MajorityLocation],
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> dict[str, MajorityAgreement]:
    """Score each database against the vote (the prior-work metric)."""
    if isinstance(databases, LookupFrame):
        frame = databases
        pool = list(reference)
        positions = frame.positions(pool)
        country_id_of = frame.countries.id_of
        scores = {}
        for name in frame.names:
            column = frame.column(name)
            flags = column.flags
            country_ids = column.country_ids
            lats = column.lats
            lons = column.lons
            country_compared = country_agreeing = 0
            city_compared = city_agreeing = 0
            for address, position in zip(pool, positions):
                value = flags[position]
                if not value:  # no coverage
                    continue
                vote = reference[address]
                if vote.country is not None and value & HAS_COUNTRY:
                    country_compared += 1
                    country_agreeing += country_ids[position] == country_id_of(vote.country)
                if vote.location is not None and value & CITY_LEVEL == CITY_LEVEL:
                    city_compared += 1
                    city_agreeing += (
                        haversine_km(
                            lats[position],
                            lons[position],
                            vote.location.lat,
                            vote.location.lon,
                        )
                        <= city_range_km
                    )
            scores[name] = MajorityAgreement(
                database=name,
                country_compared=country_compared,
                country_agreeing=country_agreeing,
                city_compared=city_compared,
                city_agreeing=city_agreeing,
            )
        return scores
    scores = {}
    for name, database in databases.items():
        country_compared = country_agreeing = 0
        city_compared = city_agreeing = 0
        for address, vote in reference.items():
            record = database.lookup(address)
            if record is None:
                continue
            if vote.country is not None and record.country is not None:
                country_compared += 1
                country_agreeing += record.country == vote.country
            if (
                vote.location is not None
                and record.has_city
                and record.has_coordinates
            ):
                city_compared += 1
                city_agreeing += (
                    record.location.distance_km(vote.location) <= city_range_km
                )
        scores[name] = MajorityAgreement(
            database=name,
            country_compared=country_compared,
            country_agreeing=country_agreeing,
            city_compared=city_compared,
            city_agreeing=city_agreeing,
        )
    return scores


@dataclass(frozen=True, slots=True)
class MajorityVsTruth:
    """How the vote's reference compares with real ground truth."""

    evaluated: int
    country_votes_with_quorum: int
    country_votes_correct: int
    city_votes_with_quorum: int
    city_votes_correct: int

    @property
    def country_vote_accuracy(self) -> float:
        if not self.country_votes_with_quorum:
            return 0.0
        return self.country_votes_correct / self.country_votes_with_quorum

    @property
    def city_vote_accuracy(self) -> float:
        if not self.city_votes_with_quorum:
            return 0.0
        return self.city_votes_correct / self.city_votes_with_quorum


def validate_majority_against_truth(
    reference: Mapping[IPv4Address, MajorityLocation],
    ground_truth: GroundTruthSet,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> MajorityVsTruth:
    """Check the vote itself against ground truth — the paper's point:
    a confident majority can still be confidently wrong."""
    evaluated = 0
    country_quorum = country_correct = 0
    city_quorum = city_correct = 0
    for record in ground_truth:
        vote = reference.get(record.address)
        if vote is None:
            continue
        evaluated += 1
        if vote.country is not None:
            country_quorum += 1
            country_correct += vote.country == record.country
        if vote.location is not None:
            city_quorum += 1
            city_correct += vote.location.distance_km(record.location) <= city_range_km
    return MajorityVsTruth(
        evaluated=evaluated,
        country_votes_with_quorum=country_quorum,
        country_votes_correct=country_correct,
        city_votes_with_quorum=city_quorum,
        city_votes_correct=city_correct,
    )
