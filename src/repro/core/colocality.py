"""IP-block co-locality analysis (§5.2.3's open question).

The paper attributes large city-level errors to *block-level* location
records — one location per /24-or-larger prefix — but notes "We do not
investigate blocks co-locality in this work", citing the authors' earlier
INFOCOM workshop paper.  This module closes that loop: given locations
for router interfaces (ground truth, or the simulator's omniscient view),
it measures how geographically concentrated each /24 block really is, and
therefore how much error a block-level record *must* cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.cdf import Ecdf
from repro.geo.coordinates import GeoPoint, centroid
from repro.net.ip import IPv4Address, IPv4Network, block_of

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class BlockSpan:
    """Geographic concentration of one /24 block."""

    block: IPv4Network
    addresses: int
    #: Greatest distance between any two member locations.
    max_span_km: float
    #: Greatest distance from the spherical centroid to a member.
    radius_km: float
    distinct_sites: int  # member locations more than 1 km apart

    def is_colocated(self, city_range_km: float = DEFAULT_CITY_RANGE_KM) -> bool:
        """True when one city-level record could serve the whole block."""
        return self.max_span_km <= city_range_km


@dataclass(frozen=True, slots=True)
class ColocalityReport:
    """Co-locality over a whole address population."""

    blocks: tuple[BlockSpan, ...]
    city_range_km: float

    @property
    def measured_blocks(self) -> int:
        return len(self.blocks)

    @property
    def multi_address_blocks(self) -> int:
        return sum(1 for b in self.blocks if b.addresses >= 2)

    @property
    def colocated_blocks(self) -> int:
        return sum(
            1
            for b in self.blocks
            if b.addresses >= 2 and b.is_colocated(self.city_range_km)
        )

    @property
    def colocation_rate(self) -> float:
        multi = self.multi_address_blocks
        return self.colocated_blocks / multi if multi else 0.0

    def span_ecdf(self) -> Ecdf:
        """Span distribution over multi-address blocks."""
        return Ecdf(
            [b.max_span_km for b in self.blocks if b.addresses >= 2]
        )

    def worst_blocks(self, count: int = 5) -> tuple[BlockSpan, ...]:
        """The most geographically spread multi-address blocks, widest first."""
        ranked = sorted(
            (b for b in self.blocks if b.addresses >= 2),
            key=lambda b: (-b.max_span_km, int(b.block.network_address)),
        )
        return tuple(ranked[:count])


def measure_block_colocality(
    locations: Mapping[IPv4Address, GeoPoint] | Iterable[tuple[IPv4Address, GeoPoint]],
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> ColocalityReport:
    """Group located addresses by /24 and measure each block's span."""
    if city_range_km <= 0:
        raise ValueError(f"city range must be positive: {city_range_km!r}")
    items = locations.items() if isinstance(locations, Mapping) else locations
    per_block: dict[IPv4Network, list[GeoPoint]] = {}
    for address, location in items:
        per_block.setdefault(block_of(address), []).append(location)

    spans = []
    for block in sorted(per_block, key=lambda b: int(b.network_address)):
        points = per_block[block]
        max_span = 0.0
        for i, a in enumerate(points):
            for b in points[i + 1 :]:
                distance = a.distance_km(b)
                if distance > max_span:
                    max_span = distance
        middle = centroid(points)
        radius = max((middle.distance_km(p) for p in points), default=0.0)
        distinct = _count_distinct_sites(points)
        spans.append(
            BlockSpan(
                block=block,
                addresses=len(points),
                max_span_km=max_span,
                radius_km=radius,
                distinct_sites=distinct,
            )
        )
    return ColocalityReport(blocks=tuple(spans), city_range_km=city_range_km)


def _count_distinct_sites(points: list[GeoPoint], merge_km: float = 1.0) -> int:
    """Greedy clustering: locations within ``merge_km`` count as one site."""
    sites: list[GeoPoint] = []
    for point in points:
        if all(point.distance_km(site) > merge_km for site in sites):
            sites.append(point)
    return len(sites)


def block_level_error_bound(
    report: ColocalityReport,
) -> dict[str, float]:
    """Summary of the error a perfect block-level database must still make.

    Even an oracle constrained to one location per /24 errs by at least
    the distance from its chosen point to each member; the block radius is
    that oracle's best-case worst error.
    """
    multi = [b for b in report.blocks if b.addresses >= 2]
    if not multi:
        return {"blocks": 0.0, "median_radius_km": 0.0, "over_city_range": 0.0}
    radii = sorted(b.radius_km for b in multi)
    over = sum(1 for b in multi if b.radius_km > report.city_range_km)
    return {
        "blocks": float(len(multi)),
        "median_radius_km": radii[len(radii) // 2],
        "over_city_range": over / len(multi),
    }
