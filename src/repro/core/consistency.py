"""Cross-database consistency (methodology question (b), §4–§5.1).

Two analyses over the Ark-topo-router population:

* **country-level pairwise agreement** — straight ISO-code comparison
  where both databases answer (§5.1: MaxMind pair 99.6%, cross-vendor
  97.0–97.6%, all-four agreement 95.8%);
* **city-level pairwise distance CDFs** (Figure 1) — rather than
  comparing city *names* across vendors, the paper compares coordinates
  and calls two answers same-city when they fall within the 40 km city
  range.  Only addresses with city-level coordinates in *all* databases
  participate (the ~692 K subset).

:func:`consistency_analysis` accepts either a database mapping (resolved
once into a :class:`~repro.core.frame.LookupFrame` on the fly) or a
prebuilt frame; the pairwise loops then compare interned country ids and
coordinate arrays directly — the shared string table makes cross-database
agreement an integer comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.cdf import Ecdf
from repro.core.frame import CITY_LEVEL, LookupFrame, as_frame
from repro.geo.coordinates import haversine_km
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class CountryPairAgreement:
    """Country-code agreement between two databases."""

    database_a: str
    database_b: str
    compared: int
    agreeing: int

    @property
    def rate(self) -> float:
        return self.agreeing / self.compared if self.compared else 0.0


@dataclass(frozen=True, slots=True)
class CityPairDistance:
    """Figure-1 series: the distance distribution between two databases'
    coordinates over the all-city-covered subset."""

    database_a: str
    database_b: str
    ecdf: Ecdf

    @property
    def identical_fraction(self) -> float:
        return self.ecdf.fraction_zero()

    def disagreement_beyond(self, km: float = DEFAULT_CITY_RANGE_KM) -> float:
        """Fraction of addresses the two databases place more than ``km`` apart."""
        return self.ecdf.fraction_beyond(km)


@dataclass(frozen=True, slots=True)
class ConsistencyReport:
    """Everything §5.1 reports."""

    country_pairs: tuple[CountryPairAgreement, ...]
    all_agree_compared: int
    all_agree_count: int
    city_subset_size: int
    city_pairs: tuple[CityPairDistance, ...]
    # Lazily built {frozenset{a, b} -> pair} indexes: pair lookups are
    # O(1) instead of a linear scan per call.  Excluded from equality and
    # repr — they are caches, not state.
    _pair_index: dict | None = field(default=None, repr=False, compare=False)

    @property
    def all_agree_rate(self) -> float:
        return self.all_agree_count / self.all_agree_compared if self.all_agree_compared else 0.0

    def _pairs(self) -> dict:
        index = self._pair_index
        if index is None:
            index = {
                "country": {
                    frozenset((pair.database_a, pair.database_b)): pair
                    for pair in self.country_pairs
                },
                "city": {
                    frozenset((pair.database_a, pair.database_b)): pair
                    for pair in self.city_pairs
                },
            }
            object.__setattr__(self, "_pair_index", index)
        return index

    def country_pair(self, name_a: str, name_b: str) -> CountryPairAgreement:
        """The country-agreement entry for an unordered database pair."""
        pair = self._pairs()["country"].get(frozenset((name_a, name_b)))
        if pair is None:
            raise KeyError(f"no such pair: {name_a} / {name_b}")
        return pair

    def city_pair(self, name_a: str, name_b: str) -> CityPairDistance:
        """The Figure-1 distance entry for an unordered database pair."""
        pair = self._pairs()["city"].get(frozenset((name_a, name_b)))
        if pair is None:
            raise KeyError(f"no such pair: {name_a} / {name_b}")
        return pair


def consistency_analysis(
    databases: Mapping[str, GeoDatabase] | LookupFrame,
    addresses: Iterable[IPv4Address],
) -> ConsistencyReport:
    """Run both §5.1 analyses over a population.

    ``databases`` may be a raw database mapping — the pool is resolved
    once into a frame — or a prebuilt
    :class:`~repro.core.frame.LookupFrame` covering the addresses.
    """
    names = sorted(
        databases.names if isinstance(databases, LookupFrame) else databases
    )
    if len(names) < 2:
        raise ValueError("consistency needs at least two databases")
    pool = list(addresses)
    frame = as_frame(databases, pool)
    if not isinstance(databases, LookupFrame) and len(pool) == len(frame):
        positions: "range | list[int]" = range(len(frame))
    else:
        positions = frame.positions(pool)
    columns = {name: frame.column(name) for name in names}

    # One pool-ordered extraction per database; the pairwise loops then
    # run C-level zips instead of per-position double indexing.  When the
    # frame was built from this exact pool the columns already *are* in
    # pool order and are used as-is.
    def pool_ordered(values):
        if isinstance(positions, range):
            return values
        return list(map(values.__getitem__, positions))

    country_vectors = {name: pool_ordered(columns[name].country_ids) for name in names}

    country_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        compared = agreeing = 0
        for id_a, id_b in zip(country_vectors[name_a], country_vectors[name_b]):
            if id_a < 0 or id_b < 0:  # uncovered, or no country code
                continue
            compared += 1
            agreeing += id_a == id_b
        country_pairs.append(CountryPairAgreement(name_a, name_b, compared, agreeing))

    all_compared = all_agree = 0
    for ids in zip(*(country_vectors[name] for name in names)):
        if min(ids) < 0:
            continue
        all_compared += 1
        first = ids[0]
        all_agree += all(identifier == first for identifier in ids[1:])

    # Figure-1 subset: city-level coordinates in every database.
    flag_vectors = [pool_ordered(columns[name].flags) for name in names]
    city_positions = [
        positions[index]
        for index, flag_tuple in enumerate(zip(*flag_vectors))
        if all(flags & CITY_LEVEL == CITY_LEVEL for flags in flag_tuple)
    ]
    city_coordinates = {
        name: (
            list(map(columns[name].lats.__getitem__, city_positions)),
            list(map(columns[name].lons.__getitem__, city_positions)),
        )
        for name in names
    }
    city_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        lats_a, lons_a = city_coordinates[name_a]
        lats_b, lons_b = city_coordinates[name_b]
        distances = [
            haversine_km(lat_a, lon_a, lat_b, lon_b)
            for lat_a, lon_a, lat_b, lon_b in zip(lats_a, lons_a, lats_b, lons_b)
        ]
        city_pairs.append(CityPairDistance(name_a, name_b, Ecdf(distances)))

    return ConsistencyReport(
        country_pairs=tuple(country_pairs),
        all_agree_compared=all_compared,
        all_agree_count=all_agree,
        city_subset_size=len(city_positions),
        city_pairs=tuple(city_pairs),
    )


def _consistency_direct(
    databases: Mapping[str, GeoDatabase],
    addresses: Iterable[IPv4Address],
) -> ConsistencyReport:
    """The original per-address lookup implementation.

    Kept verbatim as the reference path: equivalence tests and the
    direct-vs-frame pipeline benchmark run it to prove the columnar
    rewrite changes nothing but the wall time.
    """
    if len(databases) < 2:
        raise ValueError("consistency needs at least two databases")
    pool = list(addresses)
    names = sorted(databases)
    # One lookup pass per database.
    records = {name: [databases[name].lookup(a) for a in pool] for name in names}

    country_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        compared = agreeing = 0
        for rec_a, rec_b in zip(records[name_a], records[name_b]):
            if rec_a is None or rec_b is None:
                continue
            if rec_a.country is None or rec_b.country is None:
                continue
            compared += 1
            agreeing += rec_a.country == rec_b.country
        country_pairs.append(
            CountryPairAgreement(name_a, name_b, compared, agreeing)
        )

    all_compared = all_agree = 0
    for index in range(len(pool)):
        countries = [records[name][index].country if records[name][index] else None for name in names]
        if any(c is None for c in countries):
            continue
        all_compared += 1
        all_agree += len(set(countries)) == 1

    # Figure-1 subset: city-level coordinates in every database.
    city_indexes = [
        index
        for index in range(len(pool))
        if all(
            records[name][index] is not None
            and records[name][index].has_city
            and records[name][index].has_coordinates
            for name in names
        )
    ]
    city_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        distances = [
            records[name_a][index].location.distance_km(records[name_b][index].location)
            for index in city_indexes
        ]
        city_pairs.append(CityPairDistance(name_a, name_b, Ecdf(distances)))

    return ConsistencyReport(
        country_pairs=tuple(country_pairs),
        all_agree_compared=all_compared,
        all_agree_count=all_agree,
        city_subset_size=len(city_indexes),
        city_pairs=tuple(city_pairs),
    )
