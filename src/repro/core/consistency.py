"""Cross-database consistency (methodology question (b), §4–§5.1).

Two analyses over the Ark-topo-router population:

* **country-level pairwise agreement** — straight ISO-code comparison
  where both databases answer (§5.1: MaxMind pair 99.6%, cross-vendor
  97.0–97.6%, all-four agreement 95.8%);
* **city-level pairwise distance CDFs** (Figure 1) — rather than
  comparing city *names* across vendors, the paper compares coordinates
  and calls two answers same-city when they fall within the 40 km city
  range.  Only addresses with city-level coordinates in *all* databases
  participate (the ~692 K subset).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.cdf import Ecdf
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address

DEFAULT_CITY_RANGE_KM = 40.0


@dataclass(frozen=True, slots=True)
class CountryPairAgreement:
    """Country-code agreement between two databases."""

    database_a: str
    database_b: str
    compared: int
    agreeing: int

    @property
    def rate(self) -> float:
        return self.agreeing / self.compared if self.compared else 0.0


@dataclass(frozen=True, slots=True)
class CityPairDistance:
    """Figure-1 series: the distance distribution between two databases'
    coordinates over the all-city-covered subset."""

    database_a: str
    database_b: str
    ecdf: Ecdf

    @property
    def identical_fraction(self) -> float:
        return self.ecdf.fraction_zero()

    def disagreement_beyond(self, km: float = DEFAULT_CITY_RANGE_KM) -> float:
        """Fraction of addresses the two databases place more than ``km`` apart."""
        return self.ecdf.fraction_beyond(km)


@dataclass(frozen=True, slots=True)
class ConsistencyReport:
    """Everything §5.1 reports."""

    country_pairs: tuple[CountryPairAgreement, ...]
    all_agree_compared: int
    all_agree_count: int
    city_subset_size: int
    city_pairs: tuple[CityPairDistance, ...]

    @property
    def all_agree_rate(self) -> float:
        return self.all_agree_count / self.all_agree_compared if self.all_agree_compared else 0.0

    def country_pair(self, name_a: str, name_b: str) -> CountryPairAgreement:
        """The country-agreement entry for an unordered database pair."""
        for pair in self.country_pairs:
            if {pair.database_a, pair.database_b} == {name_a, name_b}:
                return pair
        raise KeyError(f"no such pair: {name_a} / {name_b}")

    def city_pair(self, name_a: str, name_b: str) -> CityPairDistance:
        """The Figure-1 distance entry for an unordered database pair."""
        for pair in self.city_pairs:
            if {pair.database_a, pair.database_b} == {name_a, name_b}:
                return pair
        raise KeyError(f"no such pair: {name_a} / {name_b}")


def consistency_analysis(
    databases: Mapping[str, GeoDatabase],
    addresses: Iterable[IPv4Address],
) -> ConsistencyReport:
    """Run both §5.1 analyses over a population."""
    if len(databases) < 2:
        raise ValueError("consistency needs at least two databases")
    pool = list(addresses)
    names = sorted(databases)
    # One lookup pass per database.
    records = {name: [databases[name].lookup(a) for a in pool] for name in names}

    country_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        compared = agreeing = 0
        for rec_a, rec_b in zip(records[name_a], records[name_b]):
            if rec_a is None or rec_b is None:
                continue
            if rec_a.country is None or rec_b.country is None:
                continue
            compared += 1
            agreeing += rec_a.country == rec_b.country
        country_pairs.append(
            CountryPairAgreement(name_a, name_b, compared, agreeing)
        )

    all_compared = all_agree = 0
    for index in range(len(pool)):
        countries = [records[name][index].country if records[name][index] else None for name in names]
        if any(c is None for c in countries):
            continue
        all_compared += 1
        all_agree += len(set(countries)) == 1

    # Figure-1 subset: city-level coordinates in every database.
    city_indexes = [
        index
        for index in range(len(pool))
        if all(
            records[name][index] is not None
            and records[name][index].has_city
            and records[name][index].has_coordinates
            for name in names
        )
    ]
    city_pairs = []
    for name_a, name_b in itertools.combinations(names, 2):
        distances = [
            records[name_a][index].location.distance_km(records[name_b][index].location)
            for index in city_indexes
        ]
        city_pairs.append(CityPairDistance(name_a, name_b, Ecdf(distances)))

    return ConsistencyReport(
        country_pairs=tuple(country_pairs),
        all_agree_compared=all_compared,
        all_agree_count=all_agree,
        city_subset_size=len(city_indexes),
        city_pairs=tuple(city_pairs),
    )
