"""Database prefix-granularity analysis (Poese et al., CCR 2011).

The paper's related work (§7) recalls Poese et al.'s finding: databases
split large ISP allocations into many small prefixes — suggesting
precision — *without* the accuracy to match.  This analysis measures the
phenomenon for any snapshot: the prefix-length histogram, how much finer
the database's rows are than the registry's actual delegations, and how
much of the answer surface is served at /24-or-coarser block granularity
(the §5.2.3 risk class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.geodb.database import GeoDatabase
from repro.net.registry import DelegationRegistry


@dataclass(frozen=True, slots=True)
class PrefixGranularityReport:
    """Row-granularity profile of one database snapshot."""

    database: str
    entries: int
    #: prefix length → number of rows
    length_histogram: Mapping[int, int]
    #: rows strictly finer than the delegation that contains them
    finer_than_delegation: int
    #: rows at /24 or coarser (block-level, §5.2.3)
    block_level_rows: int
    #: address space (in /32 equivalents) served by block-level rows
    block_level_address_share: float

    @property
    def median_prefix_length(self) -> int:
        if not self.entries:
            return 0
        counted = 0
        for length in sorted(self.length_histogram):
            counted += self.length_histogram[length]
            if counted * 2 >= self.entries:
                return length
        return max(self.length_histogram)

    @property
    def splitting_rate(self) -> float:
        """Fraction of rows finer than the registry's delegation."""
        return self.finer_than_delegation / self.entries if self.entries else 0.0


def prefix_granularity(
    database: GeoDatabase,
    registry: DelegationRegistry | None = None,
) -> PrefixGranularityReport:
    """Profile a snapshot's row granularity (registry comparison optional)."""
    histogram: dict[int, int] = {}
    finer = 0
    block_rows = 0
    block_addresses = 0
    total_addresses = 0
    for entry in database:
        length = entry.prefix.prefixlen
        histogram[length] = histogram.get(length, 0) + 1
        total_addresses += entry.prefix.num_addresses
        if entry.is_block_level:
            block_rows += 1
            block_addresses += entry.prefix.num_addresses
        if registry is not None:
            try:
                delegation = registry.lookup(entry.prefix.network_address)
            except LookupError:
                continue
            if length > delegation.prefix.prefixlen:
                finer += 1
    return PrefixGranularityReport(
        database=database.name,
        entries=len(database),
        length_histogram=dict(sorted(histogram.items())),
        finer_than_delegation=finer,
        block_level_rows=block_rows,
        block_level_address_share=(
            block_addresses / total_addresses if total_addresses else 0.0
        ),
    )


def prefix_granularity_table(
    databases: Mapping[str, GeoDatabase],
    registry: DelegationRegistry | None = None,
) -> dict[str, PrefixGranularityReport]:
    """Granularity profiles for every database."""
    return {
        name: prefix_granularity(database, registry)
        for name, database in databases.items()
    }
