"""Streaming enrichment: the firehose consumer over the serving engine.

``repro.enrich`` turns the one-shot lookup story into a streaming one —
a seeded synthetic event source (:mod:`repro.enrich.events`), a
micro-batching, whois-fanning, order-restoring pipeline with explicit
overload policies (:mod:`repro.enrich.pipeline`), and a live drift
detector holding every vendor against the §5.1 consensus
(:mod:`repro.enrich.drift`).
"""

from repro.enrich.drift import ALERT_KINDS, DriftAlert, DriftDetector
from repro.enrich.events import EVENT_KINDS, Event, EventConfig, EventSource
from repro.enrich.pipeline import (
    OVERLOAD_POLICIES,
    BoundedQueue,
    EnrichConfig,
    EnrichedEvent,
    EnrichmentPipeline,
    EnrichReport,
)

__all__ = [
    "ALERT_KINDS",
    "EVENT_KINDS",
    "OVERLOAD_POLICIES",
    "BoundedQueue",
    "DriftAlert",
    "DriftDetector",
    "EnrichConfig",
    "EnrichReport",
    "EnrichedEvent",
    "EnrichmentPipeline",
    "Event",
    "EventConfig",
    "EventSource",
]
