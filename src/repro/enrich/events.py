"""A seeded synthetic event firehose: the enrichment pipeline's input.

The related NetherGaze workload (ROADMAP) enriches *live* streams —
connection logs, access logs, traceroute hops — with geolocation and
whois data.  This module synthesizes that traffic shape: a deterministic,
infinite stream of traceroute/flow/access-log events whose addresses are
drawn from a :class:`~repro.loadgen.workload.ZipfWorkload`, so the
serving cache and answer plane see the same popularity skew a real
deployment would.

Determinism is the whole design: one ``random.Random(seed)`` drives the
address draw (inside the workload) and a second, independently-seeded
generator drives the event dressing (kinds, ports, paths, RTTs).  The
same pool and config therefore produce the *identical* event sequence —
which is what lets the pipeline's determinism suite assert byte-identical
enriched output across worker counts.

Event timestamps are *stream time*, not wall time: event ``seq`` carries
``ts = seq / rate`` for the configured nominal rate.  Wall-clock pacing
is the pipeline's concern (and is never serialized into an event), so
replaying the stream faster or slower cannot change its bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Iterator

from repro.loadgen.workload import WorkloadConfig, ZipfWorkload
from repro.net.ip import IPv4Address

__all__ = ["EVENT_KINDS", "Event", "EventConfig", "EventSource"]

#: The three traffic shapes the firehose interleaves.
EVENT_KINDS = ("traceroute", "flow", "access_log")

#: Seed offset separating the event-dressing RNG from the workload's
#: address RNG (same idiom as the scenario builder's per-stage offsets).
_DRESSING_SEED_OFFSET = 0x5EED

_FLOW_PORTS = (53, 80, 123, 443, 8080)
_HTTP_METHODS = ("GET", "GET", "GET", "POST", "HEAD")
_HTTP_STATUS = (200, 200, 200, 200, 204, 301, 404, 500)
_HTTP_RESOURCES = ("lookup", "batch", "report", "health", "metrics")


@dataclass(frozen=True, slots=True)
class EventConfig:
    """Shape of the synthetic firehose (popularity, mix, nominal rate)."""

    seed: int = 2016
    #: Nominal stream rate — only used to stamp synthetic ``ts`` values,
    #: never to pace anything (pacing is a pipeline/run concern).
    rate: float = 2000.0
    zipf_s: float = 1.1
    #: Fraction of events addressed from guaranteed-uncovered space.
    miss_fraction: float = 0.0
    pool_limit: int | None = None
    #: Relative weight of each kind in :data:`EVENT_KINDS` order.
    mix: tuple[float, ...] = (0.1, 0.6, 0.3)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate!r}")
        if len(self.mix) != len(EVENT_KINDS):
            raise ValueError(
                f"mix needs one weight per kind {EVENT_KINDS}: {self.mix!r}"
            )
        if any(weight < 0 for weight in self.mix) or not sum(self.mix):
            raise ValueError(f"mix weights must be non-negative, not all zero: {self.mix!r}")

    def workload_config(self) -> WorkloadConfig:
        return WorkloadConfig(
            seed=self.seed,
            zipf_s=self.zipf_s,
            miss_fraction=self.miss_fraction,
            pool_limit=self.pool_limit,
        )


@dataclass(frozen=True, slots=True)
class Event:
    """One firehose event: an address seen in some traffic context.

    ``attrs`` carries the kind-specific dressing (ports, paths, hops);
    treat it as read-only — events are shared across pipeline stages.
    """

    seq: int
    ts: float
    kind: str
    address: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form; deterministic for a deterministic stream."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "address": self.address,
            "attrs": dict(self.attrs),
        }


class EventSource:
    """An infinite, deterministic stream of dressed events over a pool."""

    def __init__(
        self,
        pool: Iterable[IPv4Address | str | int],
        config: EventConfig | None = None,
    ):
        self.config = config = config if config is not None else EventConfig()
        # Kept only for its validated, shuffled pool; every events() call
        # rebuilds a fresh workload from the raw pool so each iteration
        # replays the identical stream from event 0.
        self._raw_pool = tuple(pool)
        self._workload = ZipfWorkload(self._raw_pool, config.workload_config())
        # Cumulative kind weights: one rng.random() + a linear scan over
        # three entries picks the kind.
        total = float(sum(config.mix))
        cumulative: list[float] = []
        running = 0.0
        for weight in config.mix:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # float-sum slack must never drop a draw
        self._kind_cumulative = tuple(cumulative)

    @property
    def pool(self) -> tuple[str, ...]:
        return self._workload.pool

    def _dress(self, rng: random.Random, kind: str) -> dict[str, Any]:
        if kind == "traceroute":
            return {
                "monitor": f"mon-{rng.randrange(64):02d}",
                "hop": rng.randint(1, 24),
                "rtt_ms": round(rng.uniform(0.2, 180.0), 3),
            }
        if kind == "flow":
            return {
                "src_port": rng.randrange(1024, 65536),
                "dst_port": _FLOW_PORTS[rng.randrange(len(_FLOW_PORTS))],
                "proto": "udp" if rng.random() < 0.3 else "tcp",
                "bytes": rng.randrange(64, 1_500_000),
            }
        return {
            "method": _HTTP_METHODS[rng.randrange(len(_HTTP_METHODS))],
            "path": f"/api/{_HTTP_RESOURCES[rng.randrange(len(_HTTP_RESOURCES))]}",
            "status": _HTTP_STATUS[rng.randrange(len(_HTTP_STATUS))],
        }

    def events(self) -> Iterator[Event]:
        """The infinite event stream.

        Every call starts over from event 0 and replays the identical
        sequence — the address workload and the dressing generator are
        both rebuilt from the seed, so two iterations (or two worker
        configurations fed from separate calls) see the same bytes.
        """
        rng = random.Random(self.config.seed + _DRESSING_SEED_OFFSET)
        cumulative = self._kind_cumulative
        kinds = EVENT_KINDS
        rate = self.config.rate
        workload = ZipfWorkload(self._raw_pool, self.config.workload_config())
        addresses = workload.addresses()
        for seq, address in enumerate(addresses):
            draw = rng.random()
            kind = kinds[-1]
            for index, bound in enumerate(cumulative):
                if draw <= bound:
                    kind = kinds[index]
                    break
            yield Event(
                seq=seq,
                ts=round(seq / rate, 6),
                kind=kind,
                address=address,
                attrs=self._dress(rng, kind),
            )

    def take(self, count: int) -> list[Event]:
        """The first ``count`` events of the (replayable) stream."""
        if count < 0:
            raise ValueError(f"count must be >= 0: {count!r}")
        return list(islice(self.events(), count))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"EventSource({len(self.pool)} addresses,"
            f" rate={self.config.rate:g}/s, seed={self.config.seed})"
        )
