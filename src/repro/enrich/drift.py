"""Live drift detection: per-vendor disagreement with the §5.1 consensus.

The paper's one-shot study measures how often databases disagree; Gouel
et al.'s longitudinal follow-up shows the disagreement *moves* as vendors
release.  A serving deployment therefore needs the same comparison run
continuously on live traffic: for every enriched event, each vendor's
answer is held against the cross-vendor majority vote, and a structured
:class:`DriftAlert` is emitted when a vendor has drifted — a different
country (``country_flip``), a city answer farther than the city range
from the consensus city (``city_flip``), or no coverage at all where the
consensus answers (``coverage_loss``).

Two truthfulness rules keep the alert stream honest:

* **Degradation is not drift.**  While the engine reports the outcome
  degraded (a vendor quarantined, erroring, or deadline-skipped), every
  would-be alert is *suppressed* and counted — a quarantined vendor
  missing from the vote must not read as a database that moved.  This is
  the serving-side version of the §5.1 caveat that agreement statistics
  are only meaningful over databases that actually answered.
* **No consensus, no drift.**  Alerts only fire when the vote reached
  quorum; a two-vendor split is disagreement (already flagged on the
  consensus), not drift *from* anything.

Alert *sequences* are a pure function of the outcome/consensus stream —
the detector holds no clock-dependent state on that path — which is what
lets the determinism suite assert identical alerts across worker counts.
Rolling per-vendor alert rates (for ``stats()``/operators) are tracked in
:class:`~repro.obs.window.RollingWindow` side state that never feeds back
into the alerts themselves.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.majority import DEFAULT_CITY_RANGE_KM
from repro.obs.window import RollingWindow

__all__ = ["ALERT_KINDS", "DriftAlert", "DriftDetector"]

#: The three drift shapes, in severity order.
ALERT_KINDS = ("country_flip", "city_flip", "coverage_loss")


@dataclass(frozen=True, slots=True)
class DriftAlert:
    """One vendor's drift from the consensus on one event.

    ``observed`` is the vendor's answer, ``expected`` the consensus view
    (country code for flips and coverage loss, city name for city
    flips); ``distance_km`` is filled for city flips only.
    """

    seq: int
    address: str
    vendor: str
    kind: str
    observed: str | None
    expected: str | None
    distance_km: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "address": self.address,
            "vendor": self.vendor,
            "kind": self.kind,
            "observed": self.observed,
            "expected": self.expected,
            "distance_km": self.distance_km,
        }


class DriftDetector:
    """Holds each vendor's answers against the consensus, statefully
    counting but statelessly judging.

    :meth:`inspect` is called once per enriched event, in input order
    (the pipeline's emitter owns that ordering).  Counters and rolling
    windows lock internally so ``stats()`` can be scraped concurrently.
    """

    def __init__(
        self,
        *,
        city_range_km: float = DEFAULT_CITY_RANGE_KM,
        metrics=None,
        horizon_s: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.city_range_km = city_range_km
        self._metrics = metrics
        self._horizon_s = horizon_s
        self._clock = clock
        self._lock = threading.Lock()
        self.inspected = 0
        self.alerts = 0
        self.suppressed = 0
        self._counts: dict[tuple[str, str], int] = {}
        self._windows: dict[str, RollingWindow] = {}

    # -- judgement (pure per event) ------------------------------------------

    def _judge(self, seq: int, outcome, consensus) -> list[DriftAlert]:
        """The stateless core: alerts for one healthy outcome."""
        alerts: list[DriftAlert] = []
        address = str(outcome.address)
        for vendor in sorted(outcome.answers):
            answer = outcome.answers[vendor]
            if answer is None:
                # Healthy vendor, no coverage, while the quorum answers:
                # the vendor lost (or never had) this block.
                if consensus.country is not None:
                    alerts.append(
                        DriftAlert(
                            seq=seq,
                            address=address,
                            vendor=vendor,
                            kind="coverage_loss",
                            observed=None,
                            expected=consensus.country,
                        )
                    )
                continue
            record = answer.record
            if (
                consensus.country is not None
                and record.country is not None
                and record.country != consensus.country
            ):
                alerts.append(
                    DriftAlert(
                        seq=seq,
                        address=address,
                        vendor=vendor,
                        kind="country_flip",
                        observed=record.country,
                        expected=consensus.country,
                    )
                )
                continue  # at most one alert per vendor per event
            if (
                consensus.location is not None
                and record.has_city
                and record.has_coordinates
            ):
                distance = record.location.distance_km(consensus.location)
                if distance > self.city_range_km:
                    alerts.append(
                        DriftAlert(
                            seq=seq,
                            address=address,
                            vendor=vendor,
                            kind="city_flip",
                            observed=record.city,
                            expected=consensus.country,
                            distance_km=round(distance, 3),
                        )
                    )
        return alerts

    def inspect(self, seq: int, outcome, consensus) -> tuple[DriftAlert, ...]:
        """Alerts for one event — or ``()`` with a suppression count when
        the engine served it degraded (quarantine must not read as
        drift)."""
        with self._lock:
            self.inspected += 1
        if outcome.degraded or consensus.degraded:
            with self._lock:
                self.suppressed += 1
            if self._metrics is not None:
                self._metrics.inc("enrich.drift_suppressed")
            return ()
        if not consensus.quorum:
            return ()
        alerts = self._judge(seq, outcome, consensus)
        if alerts:
            self._record(alerts)
        return tuple(alerts)

    def _record(self, alerts: list[DriftAlert]) -> None:
        now = self._clock()
        with self._lock:
            self.alerts += len(alerts)
            for alert in alerts:
                key = (alert.vendor, alert.kind)
                self._counts[key] = self._counts.get(key, 0) + 1
                window = self._windows.get(alert.vendor)
                if window is None:
                    window = self._windows[alert.vendor] = RollingWindow(
                        self._horizon_s, clock=self._clock
                    )
                window.add(1.0, now=now)
        if self._metrics is not None:
            for alert in alerts:
                self._metrics.inc(
                    "enrich.drift_alerts", vendor=alert.vendor, kind=alert.kind
                )

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """``/statusz``-style block: totals, per-vendor kind counts, and
        rolling per-vendor alert rates over 10s/60s."""
        with self._lock:
            counts = dict(self._counts)
            windows = dict(self._windows)
            inspected, alerts, suppressed = (
                self.inspected,
                self.alerts,
                self.suppressed,
            )
        vendors: dict[str, dict[str, Any]] = {}
        for (vendor, kind), count in sorted(counts.items()):
            vendors.setdefault(vendor, {kind_: 0 for kind_ in ALERT_KINDS})[
                kind
            ] = count
        rates = {
            vendor: {
                "10s_per_s": round(window.rate(10), 6),
                "60s_per_s": round(window.rate(60), 6),
            }
            for vendor, window in sorted(windows.items())
        }
        return {
            "inspected": inspected,
            "alerts": alerts,
            "suppressed": suppressed,
            "city_range_km": self.city_range_km,
            "by_vendor": vendors,
            "rates": rates,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DriftDetector(alerts={self.alerts},"
            f" suppressed={self.suppressed}, inspected={self.inspected})"
        )
