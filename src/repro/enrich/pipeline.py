"""The streaming enrichment pipeline: firehose in, enriched events out.

Topology — three stages joined by bounded queues::

      submit() ──▶ [event queue] ──▶ batcher ──▶ [work queue]
                                                     │ (micro-batch →
                                                     │  engine.outcome_batch)
                       whois workers (K) ◀───────────┘
                              │
                              ▼
                       [done queue] ──▶ emitter (reorder) ──▶ sink
                                                │
                                                └─▶ drift detector

The batcher micro-batches by *size and linger*: a batch flushes when it
reaches ``batch_size`` or when its oldest event has waited ``linger_ms``,
whichever first — throughput batching that cannot stall a trickle.  The
whois fan-out runs K workers so registry latency overlaps lookup latency;
the emitter reassembles results into admission order before anything is
observable, so concurrency is an implementation detail of the middle.

**Overload is an explicit policy, only at admission.**  Internal stages
always block on their downstream queue (that is the backpressure path —
a slow whois pool backs up into the batcher and then into ``submit``).
What happens when the *event queue* is full is the caller's choice:
``block`` makes ``submit`` wait (lossless), ``shed`` makes it refuse and
count (bounded latency).  Every event is accounted exactly once:
``submitted == enriched + shed`` is an invariant the soak suite asserts.

**Determinism by construction.**  Enrichment of one event is a pure
function of the engine/whois state (no wall time is serialized), batches
preserve admission order, and the emitter's reorder buffer restores it
after the fan-out — so the same seed and stream produce byte-identical
enriched output and drift alerts whether K is 1 or 8.  Timing only moves
*latency metrics*, never payloads.

Shutdown uses a K-sentinel protocol: ``drain()`` pushes one sentinel
through the event queue; the batcher flushes and forwards K sentinels to
the work queue; each worker forwards exactly one to the done queue; the
emitter exits on the K-th.  Queues are FIFO, so by then every result is
already out.  Each thread forwards its sentinels in a ``finally`` block,
so even a crashed stage cannot wedge the stages downstream of it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.enrich.drift import DriftAlert, DriftDetector
from repro.net.registry import TeamCymruWhois, UnallocatedAddressError, WhoisRecord
from repro.obs.quantiles import BucketHistogram
from repro.serve.engine import ConsensusAnswer, LookupOutcome, ServingEngine
from repro.serve.errors import ServeError
from repro.serve.index import IndexAnswer

__all__ = [
    "OVERLOAD_POLICIES",
    "BoundedQueue",
    "EnrichConfig",
    "EnrichReport",
    "EnrichedEvent",
    "EnrichmentPipeline",
]

#: Admission behaviour when the event queue is full.
OVERLOAD_POLICIES = ("block", "shed")

#: Queue sentinel marking end-of-stream (identity-compared, never equal
#: to a payload).
_STOP = object()


class BoundedQueue:
    """A bounded FIFO hand-off with exact accounting.

    ``queue.Queue`` hides its high-water mark; this one tracks depth,
    high water, puts, and rejections under the same lock that guards the
    deque, so ``stats()`` is an exact census rather than a race.  The
    soak suite's "queues never exceed configured bounds" assertion reads
    ``high_water`` straight from here.
    """

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._high_water = 0
        self._puts = 0
        self._rejected = 0

    def put(self, item: Any, *, block: bool = True) -> bool:
        """Enqueue; ``False`` (and a rejection count) iff non-blocking
        on a full queue."""
        with self._lock:
            if not block and len(self._items) >= self.capacity:
                self._rejected += 1
                return False
            while len(self._items) >= self.capacity:
                self._not_full.wait()
            self._items.append(item)
            depth = len(self._items)
            if depth > self._high_water:
                self._high_water = depth
            self._puts += 1
            self._not_empty.notify()
            return True

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue; raises :class:`TimeoutError` on a timed-out wait."""
        with self._lock:
            if timeout is None:
                while not self._items:
                    self._not_empty.wait()
            else:
                deadline = time.monotonic() + timeout
                while not self._items:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        if not self._items:
                            raise TimeoutError(self.name)
                        break
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def high_water(self) -> int:
        with self._lock:
            return self._high_water

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": len(self._items),
                "high_water": self._high_water,
                "puts": self._puts,
                "rejected": self._rejected,
            }


@dataclass(frozen=True, slots=True)
class EnrichConfig:
    """Pipeline shape: batching, queue bounds, fan-out, overload policy."""

    batch_size: int = 64
    #: Max time the oldest queued event may wait for its batch to fill.
    linger_ms: float = 5.0
    event_queue: int = 2048
    work_queue: int = 64
    done_queue: int = 2048
    whois_workers: int = 2
    overload: str = "block"

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size!r}")
        if self.linger_ms <= 0:
            raise ValueError(f"linger_ms must be positive: {self.linger_ms!r}")
        if self.whois_workers < 1:
            raise ValueError(f"whois_workers must be >= 1: {self.whois_workers!r}")
        if self.overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload must be one of {OVERLOAD_POLICIES}: {self.overload!r}"
            )
        for bound_name in ("event_queue", "work_queue", "done_queue"):
            if getattr(self, bound_name) < 1:
                raise ValueError(f"{bound_name} must be >= 1")


def _answer_to_json(answer: IndexAnswer) -> dict[str, Any]:
    record = answer.record
    return {
        "prefix": answer.prefix,
        "country": record.country,
        "region": record.region,
        "city": record.city,
        "latitude": record.latitude,
        "longitude": record.longitude,
        "resolution": record.resolution.value,
    }


def _consensus_to_json(consensus: ConsensusAnswer) -> dict[str, Any]:
    location = consensus.location
    return {
        "country": consensus.country,
        "country_votes": consensus.country_votes,
        "location": (
            None
            if location is None
            else {"latitude": location.lat, "longitude": location.lon}
        ),
        "location_votes": consensus.location_votes,
        "voters": consensus.voters,
        "country_disagreement": consensus.country_disagreement,
        "city_disagreement": consensus.city_disagreement,
        "degraded": consensus.degraded,
        "quorum": consensus.quorum,
    }


def _whois_to_json(record: WhoisRecord) -> dict[str, Any]:
    return {
        "asn": record.asn,
        "bgp_prefix": str(record.bgp_prefix),
        "country": record.country,
        "registry": record.registry.value,
        "organization": record.organization,
    }


@dataclass(frozen=True, slots=True)
class EnrichedEvent:
    """One firehose event with everything the pipeline learned about it.

    ``error`` is set (and the geo fields emptied) when the serving layer
    returned a typed error for this address — the event still flows
    through so the in == out + shed accounting holds.
    """

    event: Any
    answers: Mapping[str, IndexAnswer | None]
    consensus: ConsensusAnswer | None
    whois: WhoisRecord | None
    degraded: bool
    unavailable: tuple[str, ...]
    alerts: tuple[DriftAlert, ...] = ()
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, free of wall-clock state — the unit the
        determinism suite compares byte-for-byte across worker counts."""
        return {
            "event": self.event.to_dict(),
            "answers": {
                vendor: (None if answer is None else _answer_to_json(answer))
                for vendor, answer in sorted(self.answers.items())
            },
            "consensus": (
                None if self.consensus is None else _consensus_to_json(self.consensus)
            ),
            "whois": None if self.whois is None else _whois_to_json(self.whois),
            "degraded": self.degraded,
            "unavailable": list(self.unavailable),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "error": self.error,
        }


@dataclass(slots=True)
class EnrichReport:
    """The ``repro enrich`` run summary (CLI ``--json`` payload)."""

    policy: str
    workers: int
    offered: int
    enriched: int
    shed: int
    errors: int
    alerts: int
    suppressed: int
    batches: int
    duration_s: float
    offered_rate: float | None
    achieved_eps: float
    latency_ms: dict[str, float]
    queues: dict[str, dict[str, int]]
    drift: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "workers": self.workers,
            "offered": self.offered,
            "enriched": self.enriched,
            "shed": self.shed,
            "errors": self.errors,
            "alerts": self.alerts,
            "suppressed": self.suppressed,
            "batches": self.batches,
            "duration_s": round(self.duration_s, 3),
            "offered_rate": self.offered_rate,
            "achieved_eps": round(self.achieved_eps, 1),
            "latency_ms": self.latency_ms,
            "queues": self.queues,
            "drift": self.drift,
        }

    def render(self) -> str:
        lines = [
            "enrichment firehose",
            f"  policy {self.policy} · workers {self.workers} · "
            f"{self.duration_s:.1f}s",
            f"  offered {self.offered} · enriched {self.enriched} · "
            f"shed {self.shed} · errors {self.errors}",
            f"  achieved {self.achieved_eps:,.0f} events/s"
            + (f" (offered {self.offered_rate:,.0f}/s)" if self.offered_rate else ""),
            f"  e2e latency ms p50={self.latency_ms.get('p50', 0.0):g} "
            f"p99={self.latency_ms.get('p99', 0.0):g}",
            f"  drift alerts {self.alerts} · suppressed {self.suppressed}",
        ]
        for name, stats in self.queues.items():
            lines.append(
                f"  queue {name}: high-water {stats['high_water']}/"
                f"{stats['capacity']} · rejected {stats['rejected']}"
            )
        return "\n".join(lines)


@dataclass(slots=True)
class _Resolved:
    """A worker's per-event computation, pre-reordering."""

    consensus: ConsensusAnswer | None
    whois: WhoisRecord | None
    error: str | None


class EnrichmentPipeline:
    """Micro-batching, whois-fanning, order-restoring enrichment.

    Single-producer: exactly one thread may call :meth:`submit` /
    :meth:`run` (admission order *is* output order, so admission must be
    a sequence).  Everything downstream is concurrent and invisible.

    Lifecycle is one-shot: :meth:`start`, submit events, :meth:`drain`.
    :meth:`run` wraps all three around an event iterable with optional
    open-loop pacing.
    """

    def __init__(
        self,
        engine: ServingEngine,
        *,
        whois: TeamCymruWhois | None = None,
        config: EnrichConfig | None = None,
        detector: DriftDetector | None = None,
        metrics=None,
        sink: Callable[[EnrichedEvent], None] | None = None,
    ):
        self.engine = engine
        self.whois = whois
        self.config = config = config if config is not None else EnrichConfig()
        self.detector = (
            detector
            if detector is not None
            else DriftDetector(city_range_km=engine.city_range_km, metrics=metrics)
        )
        self._metrics = metrics
        self._sink = sink
        self._events = BoundedQueue(config.event_queue, "events")
        self._work = BoundedQueue(config.work_queue, "work")
        self._done = BoundedQueue(config.done_queue, "done")
        self._threads: list[threading.Thread] = []
        self._crashes: list[str] = []
        self._crash_lock = threading.Lock()
        self._started = False
        self._drained = False
        # Counters below are single-writer each (submit thread or the
        # emitter), so plain ints are exact.
        self._next_order = 0
        self.submitted = 0
        self.shed = 0
        self.enriched = 0
        self.errors = 0
        self.batches = 0
        self._reorder_high_water = 0
        self.latency_ms = BucketHistogram()
        if metrics is not None:
            metrics.track_window("enrich_enriched", "enrich.enriched", horizon_s=60)
            metrics.track_window("enrich_shed", "enrich.shed", horizon_s=60)
            for queue in (self._events, self._work, self._done):
                metrics.register_gauge(
                    "enrich.queue_depth", queue.depth, queue=queue.name
                )
                metrics.register_gauge(
                    "enrich.queue_high_water",
                    lambda q=queue: q.high_water,
                    queue=queue.name,
                )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EnrichmentPipeline":
        if self._started:
            raise RuntimeError("pipeline already started")
        self._started = True
        self._threads = [
            threading.Thread(target=self._batcher_loop, name="enrich-batcher"),
        ]
        for index in range(self.config.whois_workers):
            self._threads.append(
                threading.Thread(
                    target=self._worker_loop, name=f"enrich-worker-{index}"
                )
            )
        self._threads.append(
            threading.Thread(target=self._emitter_loop, name="enrich-emitter")
        )
        for thread in self._threads:
            thread.daemon = True
            thread.start()
        return self

    def submit(self, event) -> bool:
        """Admit one event; ``False`` means it was shed (policy
        ``shed``, event queue full) and counted."""
        if not self._started or self._drained:
            raise RuntimeError("pipeline not running")
        self.submitted += 1
        order = self._next_order
        item = (order, time.perf_counter(), event)
        accepted = self._events.put(item, block=self.config.overload == "block")
        if accepted:
            self._next_order += 1
            if self._metrics is not None:
                self._metrics.inc("enrich.events")
        else:
            self.shed += 1
            if self._metrics is not None:
                self._metrics.inc("enrich.shed")
        return accepted

    def drain(self, timeout_s: float = 60.0) -> None:
        """Flush everything in flight and stop the stage threads.

        Raises if a stage crashed or failed to stop — a wedged pipeline
        must fail the test that built it, not hang it.
        """
        if not self._started:
            raise RuntimeError("pipeline never started")
        if self._drained:
            return
        self._drained = True
        self._events.put(_STOP)  # always blocking: shutdown is not load
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        stuck = [thread.name for thread in self._threads if thread.is_alive()]
        if stuck:
            raise RuntimeError(f"enrichment stages failed to drain: {stuck}")
        if self._crashes:
            raise RuntimeError(f"enrichment stages crashed: {self._crashes}")

    def run(
        self,
        events: Iterable,
        *,
        rate: float | None = None,
        duration_s: float | None = None,
        max_events: int | None = None,
    ) -> EnrichReport:
        """Start, pump ``events`` (open-loop paced at ``rate`` if given),
        drain, and report.

        ``max_events`` bounds the count directly; with ``rate`` and
        ``duration_s`` the count is ``rate * duration_s`` so a paced run
        offers a fixed workload rather than a fixed wall time (open-loop:
        a slow pipeline faces the full offered load, not a politely
        throttled one).
        """
        limit = max_events
        if limit is None and rate is not None and duration_s is not None:
            limit = int(rate * duration_s)
        if limit is None and duration_s is None:
            raise ValueError("need max_events, duration_s, or rate+duration_s")
        self.start()
        started = time.perf_counter()
        count = 0
        for event in events:
            if limit is not None and count >= limit:
                break
            if rate is not None:
                target = started + count / rate
                now = time.perf_counter()
                if now < target:
                    time.sleep(target - now)
            elif duration_s is not None and time.perf_counter() - started >= duration_s:
                break
            self.submit(event)
            count += 1
        self.drain()
        duration = time.perf_counter() - started
        return self.report(duration_s=duration, offered_rate=rate)

    # -- stage threads -------------------------------------------------------

    def _crashed(self, stage: str, exc: BaseException) -> None:
        with self._crash_lock:
            self._crashes.append(f"{stage}: {exc!r}")

    def _batcher_loop(self) -> None:
        linger_s = self.config.linger_ms / 1000.0
        batch: list[tuple[int, float, Any]] = []
        deadline = 0.0
        try:
            while True:
                if not batch:
                    item = self._events.get()
                else:
                    try:
                        item = self._events.get(
                            max(0.0, deadline - time.monotonic())
                        )
                    except TimeoutError:
                        self._flush(batch)
                        batch = []
                        continue
                if item is _STOP:
                    if batch:
                        self._flush(batch)
                    return
                if not batch:
                    deadline = time.monotonic() + linger_s
                batch.append(item)
                if len(batch) >= self.config.batch_size:
                    self._flush(batch)
                    batch = []
        except BaseException as exc:  # noqa: BLE001 - stage must report, not vanish
            self._crashed("batcher", exc)
        finally:
            for _ in range(self.config.whois_workers):
                self._work.put(_STOP)

    def _flush(self, batch: list[tuple[int, float, Any]]) -> None:
        self.batches += 1
        outcomes = self.engine.outcome_batch([item[2].address for item in batch])
        if self._metrics is not None:
            self._metrics.inc("enrich.batches")
            self._metrics.observe("enrich.batch_size", len(batch))
        for (order, admitted, event), outcome in zip(batch, outcomes):
            self._work.put((order, admitted, event, outcome))

    def _worker_loop(self) -> None:
        try:
            while True:
                item = self._work.get()
                if item is _STOP:
                    return
                order, admitted, event, outcome = item
                self._done.put(
                    (order, admitted, event, outcome, self._resolve(event, outcome))
                )
        except BaseException as exc:  # noqa: BLE001
            self._crashed("worker", exc)
        finally:
            # Exactly one sentinel per worker, crash or not — the
            # emitter's exit condition must stay reachable.
            self._done.put(_STOP)

    def _resolve(self, event, outcome) -> _Resolved:
        try:
            if isinstance(outcome, ServeError):
                return _Resolved(None, None, f"{type(outcome).__name__}: {outcome}")
            consensus = self.engine.consensus_of(outcome)
            whois_record = None
            if self.whois is not None:
                try:
                    whois_record = self.whois.lookup(event.address)
                except UnallocatedAddressError:
                    whois_record = None
            return _Resolved(consensus, whois_record, None)
        except Exception as exc:  # noqa: BLE001 - one bad event must not kill the stream
            return _Resolved(None, None, f"{type(exc).__name__}: {exc}")

    def _emitter_loop(self) -> None:
        pending: dict[int, tuple] = {}
        next_order = 0
        stops = 0
        try:
            while stops < self.config.whois_workers:
                item = self._done.get()
                if item is _STOP:
                    stops += 1
                    continue
                pending[item[0]] = item
                if len(pending) > self._reorder_high_water:
                    self._reorder_high_water = len(pending)
                while next_order in pending:
                    self._emit(pending.pop(next_order))
                    next_order += 1
            if pending:
                raise RuntimeError(
                    f"{len(pending)} events lost in flight (next={next_order})"
                )
        except BaseException as exc:  # noqa: BLE001
            self._crashed("emitter", exc)

    def _emit(self, item: tuple) -> None:
        _order, admitted, event, outcome, resolved = item
        if isinstance(outcome, ServeError):
            answers: Mapping[str, IndexAnswer | None] = {}
            degraded = True
            unavailable: tuple[str, ...] = ()
            alerts: tuple[DriftAlert, ...] = ()
        else:
            answers = outcome.answers
            degraded = outcome.degraded
            unavailable = outcome.unavailable()
            alerts = (
                self.detector.inspect(event.seq, outcome, resolved.consensus)
                if resolved.consensus is not None
                else ()
            )
        enriched = EnrichedEvent(
            event=event,
            answers=answers,
            consensus=resolved.consensus,
            whois=resolved.whois,
            degraded=degraded,
            unavailable=unavailable,
            alerts=alerts,
            error=resolved.error,
        )
        latency_ms = (time.perf_counter() - admitted) * 1000.0
        self.latency_ms.observe(latency_ms)
        self.enriched += 1
        if resolved.error is not None:
            self.errors += 1
        if self._metrics is not None:
            self._metrics.inc("enrich.enriched")
            self._metrics.observe("enrich.event_latency_ms", latency_ms)
            if resolved.error is not None:
                self._metrics.inc("enrich.errors")
        if self._sink is not None:
            self._sink(enriched)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """``/statusz``-style block: policy, accounting, queue census,
        latency quantiles, drift summary, engine degradation."""
        return {
            "policy": self.config.overload,
            "workers": self.config.whois_workers,
            "batch_size": self.config.batch_size,
            "linger_ms": self.config.linger_ms,
            "submitted": self.submitted,
            "shed": self.shed,
            "enriched": self.enriched,
            "errors": self.errors,
            "batches": self.batches,
            "queues": {
                queue.name: queue.stats()
                for queue in (self._events, self._work, self._done)
            },
            "reorder_high_water": self._reorder_high_water,
            "latency_ms": self.latency_ms.quantiles() if self.latency_ms.count else {},
            "drift": self.detector.stats(),
            "degraded_vendors": list(self.engine.degraded_vendors()),
        }

    def report(
        self, *, duration_s: float, offered_rate: float | None = None
    ) -> EnrichReport:
        drift = self.detector.stats()
        return EnrichReport(
            policy=self.config.overload,
            workers=self.config.whois_workers,
            offered=self.submitted,
            enriched=self.enriched,
            shed=self.shed,
            errors=self.errors,
            alerts=drift["alerts"],
            suppressed=drift["suppressed"],
            batches=self.batches,
            duration_s=duration_s,
            offered_rate=offered_rate,
            achieved_eps=self.enriched / duration_s if duration_s > 0 else 0.0,
            latency_ms=self.latency_ms.quantiles() if self.latency_ms.count else {},
            queues={
                queue.name: queue.stats()
                for queue in (self._events, self._work, self._done)
            },
            drift=drift,
        )
