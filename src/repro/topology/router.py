"""Routers, interfaces, and points of presence.

The synthetic Internet is a router-level graph.  Each router lives in a
PoP — an (AS, city) pair — and owns one interface per attached link plus a
loopback.  Traceroute hops answer from the interface on the link the probe
packet arrived over, which is why the paper's dataset is a set of
*interface* addresses (1.64 M of them mapping to ~485 K routers, §2.1) and
why alias resolution (:mod:`repro.topology.itdk`) is a separate concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.gazetteer import City
from repro.net.asn import AutonomousSystem
from repro.net.ip import IPv4Address


@dataclass(frozen=True, slots=True)
class PoP:
    """A point of presence: one AS's footprint in one city."""

    autonomous_system: AutonomousSystem
    city: City

    @property
    def key(self) -> tuple[int, str, str]:
        return (self.autonomous_system.asn, self.city.country, self.city.name)


@dataclass(frozen=True, slots=True)
class Interface:
    """A router interface: an address answering traceroute probes."""

    address: IPv4Address
    router_id: int
    # Hostname is attached later by the rDNS substrate; interfaces without
    # rDNS records exist too (the paper found rDNS for only 905 K of
    # 1,638 K addresses).

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.address)


@dataclass(slots=True)
class Router:
    """A router: a node of the topology graph.

    ``router_id`` is the graph node key.  ``role`` distinguishes backbone
    routers (which get hostname hints in transit domains) from access
    routers.  Interfaces accumulate as links are attached during topology
    construction.
    """

    router_id: int
    pop: PoP
    role: str = "backbone"  # "backbone" | "access" | "border"
    interfaces: list[Interface] = field(default_factory=list)

    @property
    def autonomous_system(self) -> AutonomousSystem:
        return self.pop.autonomous_system

    @property
    def city(self) -> City:
        return self.pop.city

    def add_interface(self, address: IPv4Address) -> Interface:
        """Attach a new interface with the given address."""
        interface = Interface(address=address, router_id=self.router_id)
        self.interfaces.append(interface)
        return interface

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"R{self.router_id}@{self.city.name},{self.city.country}"
            f" (AS{self.autonomous_system.asn})"
        )
