"""ITDK-style alias resolution.

CAIDA's Internet Topology Data Kit maps observed interface addresses onto
routers ("alias resolution").  The paper uses it once, to report that its
1,638 K interfaces belong to an estimated 485 K routers (§2.1) — the
analyses themselves stay at IP level because geolocation databases answer
per address.

:class:`AliasResolver` reproduces the measurement imperfection: real alias
resolution (MIDAR et al.) only confirms a subset of aliases, so some
routers appear as several singleton "routers".  ``completeness`` is the
probability that an interface is correctly tied to its true router.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.net.ip import IPv4Address
from repro.topology.builder import SyntheticInternet


@dataclass(frozen=True, slots=True)
class AliasMap:
    """Result of alias resolution over a set of interface addresses."""

    #: node id → addresses grouped onto that inferred router
    nodes: Mapping[str, tuple[IPv4Address, ...]]
    #: address → inferred node id
    node_of: Mapping[IPv4Address, str]

    def router_count(self) -> int:
        """Number of inferred routers (the paper's 485 K figure)."""
        return len(self.nodes)

    def aliases_of(self, address: IPv4Address) -> tuple[IPv4Address, ...]:
        """All addresses grouped with ``address`` (itself if unresolved)."""
        node = self.node_of.get(address)
        if node is None:
            return (address,)
        return self.nodes[node]


class AliasResolver:
    """Groups interface addresses into inferred routers.

    With ``completeness=1.0`` the result matches the simulation's ground
    truth exactly; lower values split off unresolved interfaces into
    singleton nodes, the way production ITDK under-merges.
    """

    def __init__(self, internet: SyntheticInternet, *, completeness: float = 0.88):
        if not 0.0 <= completeness <= 1.0:
            raise ValueError(f"completeness out of range: {completeness!r}")
        self._internet = internet
        self._completeness = completeness

    def resolve(
        self, addresses: Iterable[IPv4Address], rng: random.Random
    ) -> AliasMap:
        """Group the given interface addresses into inferred routers."""
        nodes: dict[str, list[IPv4Address]] = {}
        node_of: dict[IPv4Address, str] = {}
        singleton_serial = 0
        for address in sorted(set(addresses)):
            if not self._internet.is_interface(address):
                continue  # alias resolution only sees real interfaces
            if rng.random() < self._completeness:
                node_id = f"N{self._internet.router_of(address).router_id}"
            else:
                node_id = f"S{singleton_serial}"
                singleton_serial += 1
            nodes.setdefault(node_id, []).append(address)
            node_of[address] = node_id
        return AliasMap(
            nodes={node: tuple(addrs) for node, addrs in nodes.items()},
            node_of=node_of,
        )
