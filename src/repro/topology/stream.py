"""Streaming million-interface worlds: the scale tier's substrate.

A materialized :class:`~repro.topology.builder.SyntheticInternet` at
1M+ interfaces would mean a million :class:`Interface` objects, hundreds
of thousands of routers, and a networkx graph — gigabytes of pointer
soup, none of which snapshot generation actually touches.  The
generator consumes the world *block by block*: for each /24 it needs the
member addresses, their majority city, the covering delegation, and the
holder's AS role.  :class:`StreamedWorld` therefore stores the entire
address plan as three parallel integer arrays — run start, run length,
run city — plus the ordinary :class:`DelegationRegistry` and a small AS
table, and synthesizes :class:`~repro.geodb.generator.BlockView` rows on
demand.  A 1M-interface world is ~10 K runs: a few hundred kilobytes.

The allocation discipline mirrors ``_AddressAllocator``: each AS draws
/20 delegations from its registry and numbers equipment in /25-sized
(128-address) per-city chunks, so addresses in the same /24 usually
share a city — the co-locality caveat of §5.2.3 — and every address
lives inside a registry-recorded prefix (the raw material of the
registry-bias errors).  Everything is seeded: the same config always
yields the same run arrays, AS table, and delegation plan.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.geo.gazetteer import City, Gazetteer
from repro.geo.rir import RIR, rir_for_country
from repro.geodb.generator import BlockView
from repro.net.asn import ASRole, AutonomousSystem
from repro.net.ip import IPv4Address, parse_network
from repro.net.registry import DelegationRegistry

__all__ = ["StreamTierConfig", "StreamedWorld"]

#: Per-city aggregate size, matching ``_AddressAllocator.CHUNK_PREFIX_LEN``.
_CHUNK = 128

#: First ASN of the streamed range — far above the builder's allocations
#: so a streamed world can never collide with a materialized one.
_BASE_ASN = 210_000


@dataclass(slots=True)
class StreamTierConfig:
    """Knobs for :meth:`StreamedWorld.build`.

    The defaults aim the tier at the paper's regime — RIR mass in the
    proportions of the builder's stub table (ARIN and RIPE NCC dense,
    APNIC next, LACNIC/AFRINIC sparse), a transit minority holding
    foreign-registered space — at whatever interface count is asked for.
    """

    seed: int = 2016
    interfaces: int = 1_000_000
    #: Mean interfaces per AS (budgets are drawn uniformly in
    #: ``[mean // 3, 2 * mean]``, clamped to what remains).
    mean_as_interfaces: int = 600
    #: Share of ASes with a transit role (their blocks attract the
    #: registry-weighted vendor treatment, like the builder's transits).
    transit_fraction: float = 0.22
    #: Fraction of transit ASes registered in another region than they
    #: deploy — the multinational mismatch behind §5.2.3.
    foreign_registration_rate: float = 0.06
    #: Distinct footprint cities per AS (min, max).
    footprint_cities: tuple[int, int] = (1, 5)
    #: Probability that a transit AS also runs sites in other countries
    #: of its region, per RIR (dense in Europe, like the builder).
    cross_border_rate: dict[RIR, float] = field(
        default_factory=lambda: {
            RIR.ARIN: 0.18,
            RIR.RIPENCC: 0.65,
            RIR.APNIC: 0.42,
            RIR.LACNIC: 0.15,
            RIR.AFRINIC: 0.15,
        }
    )
    #: Interface mass per RIR (the builder's stub table proportions).
    rir_weights: dict[RIR, float] = field(
        default_factory=lambda: {
            RIR.ARIN: 440.0,
            RIR.RIPENCC: 700.0,
            RIR.APNIC: 280.0,
            RIR.LACNIC: 115.0,
            RIR.AFRINIC: 90.0,
        }
    )
    delegation_prefix_len: int = 20

    def __post_init__(self) -> None:
        if self.interfaces <= 0:
            raise ValueError(f"interfaces must be positive: {self.interfaces!r}")
        if self.mean_as_interfaces < _CHUNK:
            raise ValueError(
                f"mean_as_interfaces must be >= {_CHUNK}: {self.mean_as_interfaces!r}"
            )
        if not 0.0 <= self.transit_fraction <= 1.0:
            raise ValueError(f"transit_fraction out of range: {self.transit_fraction!r}")


class StreamedWorld:
    """A seeded, memory-bounded world of interface address runs.

    Duck-types the surface :class:`~repro.geodb.generator.SnapshotGenerator`
    reads from a :class:`SyntheticInternet` — ``registry``, ``ases``,
    ``gazetteer``, ``true_location`` — plus ``iter_blocks`` for the
    streaming generation path.  Build via :meth:`build`.
    """

    def __init__(
        self,
        config: StreamTierConfig,
        gazetteer: Gazetteer,
        registry: DelegationRegistry,
        ases: dict[int, AutonomousSystem],
        run_starts: array,
        run_lengths: array,
        run_cities: array,
    ):
        self.config = config
        self.gazetteer = gazetteer
        self.registry = registry
        self.ases = ases
        self._cities: tuple[City, ...] = tuple(gazetteer)
        self._run_starts = run_starts
        self._run_lengths = run_lengths
        self._run_cities = run_cities
        # Run end addresses (exclusive) and cumulative interface counts:
        # membership tests and even-spread sampling are then one bisect.
        self._run_ends = array("Q", (s + n for s, n in zip(run_starts, run_lengths)))
        cumulative = array("Q")
        total = 0
        for length in run_lengths:
            total += length
            cumulative.append(total)
        self._cumulative = cumulative
        self.interface_count = total

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls, config: StreamTierConfig, gazetteer: Gazetteer | None = None
    ) -> "StreamedWorld":
        gazetteer = gazetteer if gazetteer is not None else Gazetteer.default()
        rng = random.Random(config.seed)
        registry = DelegationRegistry()
        ases: dict[int, AutonomousSystem] = {}

        rirs = sorted(config.rir_weights, key=lambda r: r.value)
        rir_weights = [config.rir_weights[r] for r in rirs]
        country_weights: dict[RIR, tuple[list[str], list[float]]] = {}
        region_cities: dict[RIR, list[City]] = {}
        for rir in rirs:
            weights: dict[str, float] = {}
            cities = list(gazetteer.in_rir(rir))
            for city in cities:
                weights[city.country] = weights.get(city.country, 0.0) + city.population
            pairs = sorted(weights.items())
            country_weights[rir] = ([c for c, _ in pairs], [w for _, w in pairs])
            region_cities[rir] = cities

        runs: list[tuple[int, int, int]] = []
        city_index = {city.key: i for i, city in enumerate(gazetteer)}
        mean = config.mean_as_interfaces
        lo_budget, hi_budget = max(_CHUNK, mean // 3), 2 * mean
        remaining = config.interfaces
        asn = _BASE_ASN
        while remaining > 0:
            budget = min(remaining, rng.randint(lo_budget, hi_budget))
            remaining -= budget
            rir = rng.choices(rirs, weights=rir_weights, k=1)[0]
            countries, weights = country_weights[rir]
            country = rng.choices(countries, weights=weights, k=1)[0]
            is_transit = rng.random() < config.transit_fraction
            registered_country = country
            if is_transit and rng.random() < config.foreign_registration_rate:
                # A multinational: deploys here, registered wherever its
                # legal seat is — drawn over the global country mass.
                seat_rir = rng.choices(rirs, weights=rir_weights, k=1)[0]
                seat_countries, seat_weights = country_weights[seat_rir]
                registered_country = rng.choices(
                    seat_countries, weights=seat_weights, k=1
                )[0]
            footprint = cls._pick_footprint(
                rng, config, gazetteer, region_cities[rir], country, is_transit, rir
            )
            autonomous_system = AutonomousSystem(
                asn=asn,
                name=f"Stream-AS{asn}",
                role=ASRole.TRANSIT if is_transit else ASRole.STUB,
                home_country=country,
                registered_country=registered_country,
                footprint_countries=tuple(sorted({c.country for c in footprint})),
            )
            ases[asn] = autonomous_system
            cls._allocate_runs(
                rng, config, registry, autonomous_system, footprint,
                budget, runs, city_index,
            )
            asn += 1

        runs.sort()
        return cls(
            config=config,
            gazetteer=gazetteer,
            registry=registry,
            ases=ases,
            run_starts=array("Q", (r[0] for r in runs)),
            run_lengths=array("Q", (r[1] for r in runs)),
            run_cities=array("L", (r[2] for r in runs)),
        )

    @staticmethod
    def _pick_footprint(
        rng: random.Random,
        config: StreamTierConfig,
        gazetteer: Gazetteer,
        region: list[City],
        country: str,
        is_transit: bool,
        rir: RIR,
    ) -> list[City]:
        """Distinct footprint cities, population-weighted, home-first."""
        home = list(gazetteer.in_country(country))
        lo, hi = config.footprint_cities
        k = min(rng.randint(lo, hi), len(home))
        chosen: dict[tuple, City] = {}
        weights = [city.population for city in home]
        while len(chosen) < k:
            city = rng.choices(home, weights=weights, k=1)[0]
            chosen.setdefault(city.key, city)
        if is_transit and rng.random() < config.cross_border_rate.get(rir, 0.0):
            abroad = [city for city in region if city.country != country]
            if abroad:
                away_weights = [city.population for city in abroad]
                for _ in range(rng.randint(1, 2)):
                    city = rng.choices(abroad, weights=away_weights, k=1)[0]
                    chosen.setdefault(city.key, city)
        return list(chosen.values())

    @staticmethod
    def _allocate_runs(
        rng: random.Random,
        config: StreamTierConfig,
        registry: DelegationRegistry,
        autonomous_system: AutonomousSystem,
        footprint: list[City],
        budget: int,
        runs: list[tuple[int, int, int]],
        city_index: dict[tuple, int],
    ) -> None:
        """Number ``budget`` interfaces out of fresh delegations.

        Chunked like ``_AddressAllocator``: consecutive 128-address
        per-city aggregates walking each delegation's host range (network
        and broadcast addresses excluded), with fresh /20s requested as
        the space runs out.
        """
        weights = [city.population for city in footprint]
        rir = rir_for_country(autonomous_system.registered_country)
        need = budget
        while need > 0:
            delegation = registry.allocate(
                rir,
                asn=autonomous_system.asn,
                registered_country=autonomous_system.registered_country,
                organization=autonomous_system.name,
                prefix_len=config.delegation_prefix_len,
            )
            base = int(delegation.prefix.network_address)
            cursor = base + 1  # skip the network address
            host_end = base + delegation.prefix.num_addresses - 1  # skip broadcast
            while cursor < host_end and need > 0:
                length = min(_CHUNK, host_end - cursor, need)
                city = rng.choices(footprint, weights=weights, k=1)[0]
                runs.append((cursor, length, city_index[city.key]))
                cursor += length
                need -= length

    # -- world queries -------------------------------------------------------

    def _run_of(self, addr: int) -> int:
        """The run index covering ``addr``, or −1."""
        index = bisect_right(self._run_starts, addr) - 1
        if index >= 0 and addr < self._run_ends[index]:
            return index
        return -1

    def true_location(self, address: IPv4Address | int) -> City:
        """Ground-truth city of an interface (same contract as the
        materialized world: raises ``KeyError`` off the interface plan)."""
        addr = int(address)
        index = self._run_of(addr)
        if index < 0:
            raise KeyError(f"not a router interface: {IPv4Address(addr)}")
        return self._cities[self._run_cities[index]]

    def is_interface(self, address: IPv4Address | int) -> bool:
        """Return whether ``address`` is one of the plan's router interfaces."""
        return self._run_of(int(address)) >= 0

    @property
    def run_count(self) -> int:
        return len(self._run_starts)

    def block_count(self) -> int:
        """Distinct /24 blocks across the interface plan (O(runs))."""
        blocks = 0
        previous = -1
        for index in range(len(self._run_starts)):
            first = self._run_starts[index] >> 8
            last = (self._run_ends[index] - 1) >> 8
            if first == previous:
                first += 1
            if first <= last:
                blocks += last - first + 1
                previous = last
        return blocks

    def iter_blocks(self) -> Iterator[BlockView]:
        """Every /24 of the plan, ascending, as generator block views.

        Blocks are synthesized one at a time from the run arrays —
        at most 256 transient address objects alive per step — with the
        majority city computed from run-segment lengths (no per-address
        city lookups) using the generator's deterministic tie-break.
        """
        cities = self._cities
        block = -1
        segments: list[tuple[int, int, int]] = []  # (seg_start, seg_end, city_id)

        def view() -> BlockView:
            addresses = tuple(
                IPv4Address(a)
                for seg_start, seg_end, _ in segments
                for a in range(seg_start, seg_end)
            )
            counts: dict[int, int] = {}
            for seg_start, seg_end, city_id in segments:
                counts[city_id] = counts.get(city_id, 0) + (seg_end - seg_start)
            majority_id = max(
                counts.items(), key=lambda item: (item[1], cities[item[0]].key)
            )[0]
            network = parse_network(f"{IPv4Address(block << 8)}/24")
            return BlockView(network, addresses, cities[majority_id])

        for index in range(len(self._run_starts)):
            position = self._run_starts[index]
            end = self._run_ends[index]
            city_id = self._run_cities[index]
            while position < end:
                position_block = position >> 8
                segment_end = min(end, (position_block + 1) << 8)
                if position_block != block:
                    if segments:
                        yield view()
                    block = position_block
                    segments = []
                segments.append((position, segment_end, city_id))
                position = segment_end
        if segments:
            yield view()

    def sample_addresses(self, count: int) -> list[int]:
        """``count`` interface addresses spread evenly across the plan.

        Deterministic (no RNG): the k-th sample is interface number
        ``k * interfaces // count``.  The serving benchmarks and the
        replay pool use this to probe the tier without materializing it.
        """
        if count <= 0:
            raise ValueError(f"count must be positive: {count!r}")
        count = min(count, self.interface_count)
        samples: list[int] = []
        for k in range(count):
            ordinal = k * self.interface_count // count
            index = bisect_right(self._cumulative, ordinal)
            before = self._cumulative[index - 1] if index else 0
            samples.append(self._run_starts[index] + (ordinal - before))
        return samples

    def describe(self) -> str:
        """One-paragraph inventory, for logs and examples."""
        n_transit = sum(1 for a in self.ases.values() if a.is_transit)
        return (
            f"StreamedWorld: {len(self.ases)} ASes ({n_transit} transit), "
            f"{self.interface_count} interfaces in {self.run_count} runs / "
            f"{self.block_count()} blocks, {len(self.registry)} delegations"
        )
