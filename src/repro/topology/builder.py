"""Synthetic Internet construction.

This is the substitute for the real Internet that CAIDA Ark probed: a
router-level graph with geographically-placed PoPs, realistic AS roles,
RIR-delegated addressing, and latency-weighted links.  Everything is
seeded, so a scenario is a pure function of its configuration.

Fidelity goals (what the paper's analyses actually depend on):

* router interfaces outnumber routers ~3.4:1 (1,638 K interfaces vs
  485 K routers in §2.1) — achieved because every link contributes an
  interface on each endpoint;
* transit ASes announce nearly all DNS-based ground-truth addresses and
  ~75% of RTT-proximity addresses (§2.3.3) — the seven DRoP ground-truth
  domains are transit networks, probes sit in stub/eyeball ASes;
* multinational carriers hold address space delegated by their *home*
  registry while deploying routers abroad — the source of the ARIN→US
  registry bias in §5.2.3;
* geographic skew: ARIN and RIPE NCC dominate infrastructure density,
  with APNIC next and LACNIC/AFRINIC sparser (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.geo.gazetteer import City, Gazetteer
from repro.geo.rir import RIR, rir_for_country
from repro.net.asn import ASRole, AutonomousSystem
from repro.net.ip import IPv4Address, hosts_in
from repro.net.registry import Delegation, DelegationRegistry, TeamCymruWhois
from repro.topology.router import Interface, PoP, Router
from repro.topology.rtt import RttModel


@dataclass(frozen=True, slots=True)
class TransitSpec:
    """Specification of a named transit AS (footprint + rDNS domain).

    The default specs model the paper's seven DRoP ground-truth domains
    (§2.3.1) closely enough that the DNS-based ground truth has the same
    character: a couple of large international carriers, a few regional
    ones, and two tiny networks.
    """

    name: str
    domain: str
    role: ASRole
    registered_country: str
    footprint_countries: tuple[str, ...]
    max_cities: int
    weight: float  # relative router-count share among named transits
    hostnames_have_hints: bool = True
    #: Share of the AS's routers deployed in its registered country.  The
    #: remainder sits abroad — in foreign-registered address space, the raw
    #: material of the paper's registry-bias errors (§5.2.3: 29% of ARIN
    #: ground-truth addresses are outside the US).
    home_bias: float = 0.71


#: The seven domains the paper has operator-validated DRoP rules for,
#: modelled with their real-world footprints.
GROUND_TRUTH_DOMAIN_SPECS: tuple[TransitSpec, ...] = (
    TransitSpec(
        name="Cogent Communications",
        domain="cogentco.com",
        role=ASRole.TIER1,
        registered_country="US",
        footprint_countries=(
            "US", "CA", "MX", "GB", "DE", "FR", "NL", "ES", "IT", "CH",
            "BE", "AT", "SE", "DK", "NO", "FI", "PL", "CZ", "HU", "RO",
            "BG", "PT", "IE", "UA", "SK", "HR", "SI", "EE", "LV", "LT",
        ),
        max_cities=85,
        weight=6462.0,
    ),
    TransitSpec(
        name="NTT Global IP Network",
        domain="ntt.net",
        role=ASRole.TIER1,
        registered_country="US",
        footprint_countries=(
            "US", "JP", "GB", "DE", "NL", "FR", "ES", "IT", "SG", "HK",
            "TW", "KR", "AU", "MY", "TH", "IN", "BR", "CA",
        ),
        max_cities=45,
        weight=2331.0,
    ),
    TransitSpec(
        name="Internap",
        domain="pnap.net",
        role=ASRole.TRANSIT,
        registered_country="US",
        footprint_countries=("US", "GB", "NL", "SG", "JP", "AU", "HK", "CA"),
        max_cities=30,
        weight=1437.0,
    ),
    TransitSpec(
        name="Telecom Italia Sparkle (Seabone)",
        domain="seabone.net",
        role=ASRole.TRANSIT,
        registered_country="IT",
        footprint_countries=(
            "IT", "DE", "GB", "FR", "ES", "GR", "TR", "US", "BR", "AR",
            "CL", "SG", "HK", "NL",
        ),
        max_cities=28,
        weight=1405.0,
        home_bias=0.52,
    ),
    TransitSpec(
        name="Peak 10",
        domain="peak10.net",
        role=ASRole.TRANSIT,
        registered_country="US",
        footprint_countries=("US",),
        max_cities=10,
        weight=170.0,
        home_bias=1.0,
    ),
    TransitSpec(
        name="Digital West",
        domain="digitalwest.net",
        role=ASRole.TRANSIT,
        registered_country="US",
        footprint_countries=("US",),
        max_cities=3,
        weight=29.0,
        home_bias=1.0,
    ),
    TransitSpec(
        name="BelWue",
        domain="belwue.de",
        role=ASRole.TRANSIT,
        registered_country="DE",
        footprint_countries=("DE",),
        max_cities=5,
        weight=23.0,
        home_bias=1.0,
    ),
    # NTT's Asian arm holds APNIC space under the same ntt.net domain —
    # this is how the paper's DNS-based set reaches 560 APNIC addresses
    # (Table 1) although all seven domains are US/EU organizations.
    TransitSpec(
        name="NTT Communications (Asia)",
        domain="ntt.net",
        role=ASRole.TRANSIT,
        registered_country="JP",
        footprint_countries=("JP", "SG", "HK", "TW", "KR", "AU", "IN", "MY", "TH"),
        max_cities=18,
        weight=560.0,
        home_bias=0.55,
    ),
)

#: Additional anonymous tier-1-like carriers (no operator-validated DRoP
#: rules, mirroring the other 1,391 domains the paper could not use).
GENERIC_TIER1_SPECS: tuple[TransitSpec, ...] = (
    TransitSpec(
        name="GlobalBackbone One",
        domain="gbone.example.net",
        role=ASRole.TIER1,
        registered_country="US",
        footprint_countries=(
            "US", "CA", "GB", "DE", "FR", "NL", "JP", "SG", "AU", "BR", "ZA",
        ),
        max_cities=40,
        weight=2500.0,
        hostnames_have_hints=True,
        home_bias=0.65,
    ),
    TransitSpec(
        name="EuroCore Carrier",
        domain="eurocore.example.net",
        role=ASRole.TIER1,
        registered_country="DE",
        footprint_countries=(
            "DE", "GB", "FR", "NL", "IT", "ES", "CH", "AT", "SE", "PL",
            "CZ", "US", "RU", "UA", "TR",
        ),
        max_cities=40,
        weight=2200.0,
        hostnames_have_hints=False,
        # Pan-European carrier: most of its (RIPE-delegated, DE-registered)
        # footprint is outside Germany, and its hostnames carry no hints —
        # a registry-bias error source no vendor can decode around.
        home_bias=0.40,
    ),
    TransitSpec(
        name="AsiaPac Transit",
        domain="aptransit.example.net",
        role=ASRole.TIER1,
        registered_country="SG",
        footprint_countries=(
            "SG", "HK", "JP", "KR", "TW", "AU", "IN", "MY", "TH", "ID",
            "PH", "VN", "US", "CN",
        ),
        max_cities=32,
        weight=1400.0,
        hostnames_have_hints=True,
        home_bias=0.45,
    ),
)


@dataclass(slots=True)
class TopologyConfig:
    """Knobs for :class:`TopologyBuilder`.

    The defaults produce roughly 18 K routers / 60 K interfaces — about a
    1:27 scale model of the paper's 485 K routers / 1.64 M interfaces.
    Use ``scaled()`` to shrink or grow everything proportionally.
    """

    seed: int = 2016
    transit_specs: tuple[TransitSpec, ...] = field(
        default=GROUND_TRUTH_DOMAIN_SPECS + GENERIC_TIER1_SPECS
    )
    #: Total routers across all named transit ASes (split by spec weight).
    #: Kept well below the regional+stub mass: multinationals are a small
    #: minority of the interfaces Ark observes, even if they dominate the
    #: DNS-based ground truth.
    named_transit_routers: int = 1600
    #: Regional transit ASes per RIR.
    transit_per_rir: dict[RIR, int] = field(
        default_factory=lambda: {
            RIR.ARIN: 70,
            RIR.RIPENCC: 100,
            RIR.APNIC: 52,
            RIR.LACNIC: 22,
            RIR.AFRINIC: 18,
        }
    )
    #: Stub (eyeball/enterprise) ASes per RIR; these host probes.
    stub_per_rir: dict[RIR, int] = field(
        default_factory=lambda: {
            RIR.ARIN: 440,
            RIR.RIPENCC: 700,
            RIR.APNIC: 280,
            RIR.LACNIC: 115,
            RIR.AFRINIC: 90,
        }
    )
    regional_transit_routers: tuple[int, int] = (12, 42)  # min, max per AS
    regional_transit_cities: tuple[int, int] = (2, 7)
    #: Probability that a regional transit AS also runs PoPs in other
    #: countries of its region (dense in Europe, where carriers routinely
    #: reach AMS/FRA/LON — a second source of registry-bias errors).
    regional_cross_border_rate: dict[RIR, float] = field(
        default_factory=lambda: {
            RIR.ARIN: 0.18,
            RIR.RIPENCC: 0.65,
            RIR.APNIC: 0.42,
            RIR.LACNIC: 0.15,
            RIR.AFRINIC: 0.15,
        }
    )
    stub_routers: tuple[int, int] = (1, 4)
    routers_per_pop: tuple[int, int] = (1, 4)
    #: Fraction of regional transit ASes registered abroad (multinationals).
    foreign_registration_rate: float = 0.06
    #: Fraction of *named*-spec PoP routers that sit in a country different
    #: from the AS's registered country (drives the ARIN-abroad effect).
    intra_city_km: float = 4.0
    rtt_model: RttModel = field(default_factory=RttModel)
    delegation_prefix_len: int = 20

    def scaled(self, factor: float) -> "TopologyConfig":
        """A copy with all population counts scaled by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor!r}")

        def s(n: int, floor: int = 1) -> int:
            return max(floor, round(n * factor))

        return TopologyConfig(
            seed=self.seed,
            transit_specs=self.transit_specs,
            named_transit_routers=s(self.named_transit_routers, 60),
            transit_per_rir={r: s(n) for r, n in self.transit_per_rir.items()},
            stub_per_rir={r: s(n, 2) for r, n in self.stub_per_rir.items()},
            regional_transit_routers=self.regional_transit_routers,
            regional_transit_cities=self.regional_transit_cities,
            regional_cross_border_rate=self.regional_cross_border_rate,
            stub_routers=self.stub_routers,
            routers_per_pop=self.routers_per_pop,
            foreign_registration_rate=self.foreign_registration_rate,
            intra_city_km=self.intra_city_km,
            rtt_model=self.rtt_model,
            delegation_prefix_len=self.delegation_prefix_len,
        )


class _AddressAllocator:
    """Hands out interface addresses from an AS's delegations,
    geographically clustered.

    Operators number equipment out of per-site aggregates, so addresses in
    the same /24 usually share a city (not always — the residual mixing is
    the co-locality caveat of §5.2.3).  The allocator models that: each
    city of the AS draws /26-sized chunks from the delegation space, and
    fresh delegations are requested from the registry as chunks run out —
    so every address really lives inside a registry-recorded prefix.
    """

    CHUNK_PREFIX_LEN = 25  # 128 addresses per per-city aggregate

    def __init__(
        self,
        registry: DelegationRegistry,
        autonomous_system: AutonomousSystem,
        prefix_len: int,
    ):
        self._registry = registry
        self._as = autonomous_system
        self._prefix_len = prefix_len
        self._rir = rir_for_country(autonomous_system.registered_country)
        self._unchunked: list[IPv4Address] = []
        self._per_city: dict[tuple[str, str, str], list[IPv4Address]] = {}
        self._delegations: list[Delegation] = []

    @property
    def delegations(self) -> tuple[Delegation, ...]:
        return tuple(self._delegations)

    def _refill(self) -> None:
        delegation = self._registry.allocate(
            self._rir,
            asn=self._as.asn,
            registered_country=self._as.registered_country,
            organization=self._as.name,
            prefix_len=self._prefix_len,
        )
        self._delegations.append(delegation)
        self._unchunked = list(hosts_in(delegation.prefix))  # ascending

    def next_address(self, city: City) -> IPv4Address:
        bucket = self._per_city.setdefault(city.key, [])
        if not bucket:
            chunk_size = 1 << (32 - self.CHUNK_PREFIX_LEN)
            if len(self._unchunked) < chunk_size:
                # A short tail may remain from the previous delegation; it
                # stays attached to whichever city drains next (realistic
                # fragmentation), topped up from a fresh delegation.
                bucket.extend(self._unchunked)
                self._unchunked = []
                self._refill()
            take = chunk_size - len(bucket)
            bucket.extend(self._unchunked[:take])
            del self._unchunked[:take]
        return bucket.pop(0)


class SyntheticInternet:
    """The built world: routers, links, addressing, and query helpers."""

    def __init__(
        self,
        graph: nx.Graph,
        routers: dict[int, Router],
        ases: dict[int, AutonomousSystem],
        registry: DelegationRegistry,
        gazetteer: Gazetteer,
        rtt_model: RttModel,
        as_routers: dict[int, list[int]],
    ):
        self.graph = graph
        self.routers = routers
        self.ases = ases
        self.registry = registry
        self.gazetteer = gazetteer
        self.rtt_model = rtt_model
        self.whois = TeamCymruWhois(registry)
        self._as_routers = as_routers
        self._interface_index: dict[IPv4Address, Interface] = {}
        for router in routers.values():
            for interface in router.interfaces:
                self._interface_index[interface.address] = interface

    # -- interface queries -------------------------------------------------

    def interfaces(self) -> tuple[Interface, ...]:
        """Every interface in the world, in address order."""
        return tuple(
            self._interface_index[a] for a in sorted(self._interface_index)
        )

    def interface_count(self) -> int:
        """Total number of interfaces in the world."""
        return len(self._interface_index)

    def router_of(self, address: IPv4Address) -> Router:
        """The router owning an interface address (simulation truth)."""
        interface = self._interface_index.get(address)
        if interface is None:
            raise KeyError(f"not a router interface: {address}")
        return self.routers[interface.router_id]

    def true_location(self, address: IPv4Address) -> City:
        """Ground-truth city of an interface (the simulator's omniscience).

        Real studies never see this directly — they approximate it with the
        DNS-based and RTT-proximity methods.  The substrate exposes it so
        tests can verify those methods against reality.
        """
        return self.router_of(address).city

    def is_interface(self, address: IPv4Address) -> bool:
        """True when the address is a live router interface."""
        return address in self._interface_index

    # -- routing helpers ---------------------------------------------------

    def routers_of_as(self, asn: int) -> tuple[int, ...]:
        """Router ids belonging to an AS."""
        return tuple(self._as_routers.get(asn, ()))

    def home_router_for(self, address: IPv4Address) -> int:
        """The router that announces an arbitrary routed address.

        Interface addresses live on their routers; any other address in a
        delegated prefix is homed deterministically on one of the holding
        AS's routers (a traceroute toward it dies there or at its edge).
        """
        interface = self._interface_index.get(address)
        if interface is not None:
            return interface.router_id
        delegation = self.registry.lookup(address)  # raises if unrouted
        candidates = self._as_routers[delegation.asn]
        return candidates[int(address) % len(candidates)]

    def edge_interface(self, from_router: int, to_router: int) -> IPv4Address:
        """The interface of ``to_router`` on its link with ``from_router``.

        This is the address a traceroute hop reports: the ingress interface
        on the link the probe arrived over.
        """
        data = self.graph.edges[from_router, to_router]
        return data["ifaces"][to_router]

    def link_distance_km(self, u: int, v: int) -> float:
        """Geographic length of the link between two adjacent routers."""
        return self.graph.edges[u, v]["distance_km"]

    # -- summary -----------------------------------------------------------

    def describe(self) -> str:
        """One-paragraph inventory, for logs and examples."""
        n_transit = sum(1 for a in self.ases.values() if a.is_transit)
        return (
            f"SyntheticInternet: {len(self.ases)} ASes ({n_transit} transit), "
            f"{len(self.routers)} routers, {self.graph.number_of_edges()} links, "
            f"{self.interface_count()} interfaces, "
            f"{len(self.registry)} delegations"
        )


class TopologyBuilder:
    """Builds a :class:`SyntheticInternet` from a :class:`TopologyConfig`."""

    _FIRST_ASN = 100

    def __init__(self, config: TopologyConfig, gazetteer: Gazetteer | None = None):
        self.config = config
        self.gazetteer = gazetteer if gazetteer is not None else Gazetteer.default()
        self._rng = random.Random(config.seed)
        self._registry = DelegationRegistry()
        self._graph = nx.Graph()
        self._routers: dict[int, Router] = {}
        self._ases: dict[int, AutonomousSystem] = {}
        self._as_routers: dict[int, list[int]] = {}
        self._allocators: dict[int, _AddressAllocator] = {}
        self._next_router_id = 0
        self._next_asn = self._FIRST_ASN

    # -- public ------------------------------------------------------------

    def build(self) -> SyntheticInternet:
        """Construct the world: ASes, routers, links, and addressing."""
        named = self._build_named_transits()
        regional = self._build_regional_transits()
        stubs = self._build_stubs()
        self._wire_transit_mesh(named)
        self._wire_regional_uplinks(regional, named)
        self._wire_stub_uplinks(stubs, regional + named)
        self._ensure_connected(named)
        return SyntheticInternet(
            graph=self._graph,
            routers=self._routers,
            ases=self._ases,
            registry=self._registry,
            gazetteer=self.gazetteer,
            rtt_model=self.config.rtt_model,
            as_routers=self._as_routers,
        )

    # -- AS creation -------------------------------------------------------

    def _new_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _register_as(self, autonomous_system: AutonomousSystem) -> None:
        self._ases[autonomous_system.asn] = autonomous_system
        self._as_routers[autonomous_system.asn] = []
        self._allocators[autonomous_system.asn] = _AddressAllocator(
            self._registry, autonomous_system, self.config.delegation_prefix_len
        )

    def _build_named_transits(self) -> list[int]:
        total_weight = sum(spec.weight for spec in self.config.transit_specs)
        asns = []
        for spec in self.config.transit_specs:
            autonomous_system = AutonomousSystem(
                asn=self._new_asn(),
                name=spec.name,
                role=spec.role,
                home_country=spec.registered_country,
                registered_country=spec.registered_country,
                domain=spec.domain,
                footprint_countries=spec.footprint_countries,
            )
            self._register_as(autonomous_system)
            budget = max(
                2,
                round(self.config.named_transit_routers * spec.weight / total_weight),
            )
            cities, weights = self._footprint_cities(spec, budget)
            self._build_as_footprint(autonomous_system, cities, budget, weights=weights)
            asns.append(autonomous_system.asn)
        return asns

    def _footprint_cities(
        self, spec: TransitSpec, budget: int
    ) -> tuple[list[City], list[float]]:
        """Cities for a named transit, with router-budget weights.

        The registered country's cities share ``home_bias`` of the router
        budget (carriers are densest at home); foreign PoPs split the rest.
        The city count is capped by the budget so the one-router-per-PoP
        floor cannot override the home bias at small scales.
        """
        cities: list[City] = []
        for country in spec.footprint_countries:
            per_country = 6 if country == spec.registered_country else 3
            cities.extend(self.gazetteer.in_country(country)[:per_country])
        self._rng.shuffle(cities)
        home = [c for c in cities if c.country == spec.registered_country]
        away = [c for c in cities if c.country != spec.registered_country]
        # Cap the city count by the router budget (~2.5 routers per PoP),
        # then split the slots so the foreign share survives even for small
        # budgets — the home/away *router* split is what home_bias states.
        city_budget = min(spec.max_cities, max(2, round(budget / 2.5)))
        if spec.home_bias >= 1.0 or not away:
            away_count = 0
        else:
            away_count = min(
                len(away), max(1, round(city_budget * (1.0 - spec.home_bias)))
            )
        home_count = max(1, min(len(home), city_budget - away_count))
        kept = home[:home_count] + away[:away_count]
        if not kept:
            kept = home
        kept_home = sum(1 for c in kept if c.country == spec.registered_country)
        kept_away = len(kept) - kept_home
        weights = []
        for city in kept:
            if city.country == spec.registered_country:
                weights.append(spec.home_bias / max(1, kept_home))
            else:
                weights.append((1.0 - spec.home_bias) / max(1, kept_away))
        return kept, weights

    def _build_regional_transits(self) -> list[int]:
        asns = []
        for rir, count in self.config.transit_per_rir.items():
            countries = self._countries_weighted(rir)
            if not countries:
                continue
            for i in range(count):
                home = self._weighted_country_choice(countries)
                registered = home
                if self._rng.random() < self.config.foreign_registration_rate:
                    # A multinational registered at its HQ abroad (often US).
                    registered = "US" if rir is not RIR.ARIN else "GB"
                autonomous_system = AutonomousSystem(
                    asn=self._new_asn(),
                    name=f"{home} Regional Transit {i}",
                    role=ASRole.TRANSIT,
                    home_country=home,
                    registered_country=registered,
                    domain=f"rt{i}.{home.lower()}.example.net",
                )
                self._register_as(autonomous_system)
                lo, hi = self.config.regional_transit_cities
                home_cities = list(self.gazetteer.in_country(home))
                n_cities = min(len(home_cities), self._rng.randint(lo, hi))
                cities = self._rng.sample(home_cities, n_cities)
                if self._rng.random() < self.config.regional_cross_border_rate.get(rir, 0.0):
                    # Cross-border PoPs inside the same region, in the AS's
                    # domestically-registered address space.
                    foreign_pool = [
                        c for c in self.gazetteer.in_rir(rir) if c.country != home
                    ]
                    if foreign_pool:
                        extra = self._rng.sample(
                            foreign_pool, min(len(foreign_pool), self._rng.randint(2, 4))
                        )
                        cities.extend(extra)
                lo_r, hi_r = self.config.regional_transit_routers
                self._build_as_footprint(
                    autonomous_system, cities, self._rng.randint(lo_r, hi_r)
                )
                asns.append(autonomous_system.asn)
        return asns

    def _build_stubs(self) -> list[int]:
        asns = []
        for rir, count in self.config.stub_per_rir.items():
            countries = self._countries_weighted(rir)
            if not countries:
                continue
            for i in range(count):
                home = self._weighted_country_choice(countries)
                autonomous_system = AutonomousSystem(
                    asn=self._new_asn(),
                    name=f"{home} Eyeball {i}",
                    role=ASRole.STUB,
                    home_country=home,
                    registered_country=home,
                    domain=None,
                )
                self._register_as(autonomous_system)
                city = self._weighted_city_choice(home)
                lo, hi = self.config.stub_routers
                self._build_as_footprint(
                    autonomous_system, [city], self._rng.randint(lo, hi),
                    role="access",
                )
                asns.append(autonomous_system.asn)
        return asns

    def _countries_weighted(self, rir: RIR) -> list[tuple[str, float]]:
        weights: dict[str, float] = {}
        for city in self.gazetteer.in_rir(rir):
            weights[city.country] = weights.get(city.country, 0.0) + city.population
        return sorted(weights.items())

    def _weighted_country_choice(self, countries: list[tuple[str, float]]) -> str:
        codes = [c for c, _ in countries]
        weights = [w for _, w in countries]
        return self._rng.choices(codes, weights=weights, k=1)[0]

    def _weighted_city_choice(self, country: str) -> City:
        cities = self.gazetteer.in_country(country)
        weights = [city.population for city in cities]
        return self._rng.choices(list(cities), weights=weights, k=1)[0]

    # -- router/link fabric --------------------------------------------------

    def _build_as_footprint(
        self,
        autonomous_system: AutonomousSystem,
        cities: list[City],
        router_budget: int,
        role: str = "backbone",
        weights: list[float] | None = None,
    ) -> None:
        """Create PoPs and routers, then wire the intra-AS backbone.

        ``weights`` skews the router budget across cities (home-biased
        footprints); uniform when omitted.
        """
        if not cities:
            raise ValueError(f"{autonomous_system} has no footprint cities")
        if weights is not None and len(weights) != len(cities):
            raise ValueError("weights must align with cities")
        per_pop_lo, per_pop_hi = self.config.routers_per_pop
        pops: list[list[int]] = []
        budget = max(router_budget, len(cities))
        if weights is None:
            shares = [budget // len(cities)] * len(cities)
        else:
            total_weight = sum(weights) or 1.0
            shares = [int(budget * w / total_weight) for w in weights]
        remaining = budget
        for index, city in enumerate(cities):
            cities_left = len(cities) - index
            fair_share = shares[index] + self._rng.randint(0, 1)
            take = min(
                remaining - (cities_left - 1),
                max(self._rng.randint(per_pop_lo, per_pop_hi), fair_share),
            )
            take = max(1, take)
            pop = PoP(autonomous_system, city)
            ids = [self._new_router(pop, role) for _ in range(take)]
            remaining -= take
            # Intra-PoP ring (metro fiber, a few km).
            for a, b in zip(ids, ids[1:]):
                self._link(a, b, self.config.intra_city_km)
            if len(ids) > 2:
                self._link(ids[0], ids[-1], self.config.intra_city_km)
            pops.append(ids)
        # Inter-PoP backbone: chain each PoP to its geographically nearest
        # already-wired PoP, which yields a connected tree shaped like real
        # backbone builds (plus a couple of shortcut links for big ASes).
        for i in range(1, len(pops)):
            head = self._routers[pops[i][0]]
            nearest = min(
                range(i),
                key=lambda j: head.city.location.distance_km(
                    self._routers[pops[j][0]].city.location
                ),
            )
            self._link_pops(pops[i], pops[nearest])
        if len(pops) > 3:
            for _ in range(len(pops) // 3):
                i, j = self._rng.sample(range(len(pops)), 2)
                self._link_pops(pops[i], pops[j])

    def _new_router(self, pop: PoP, role: str) -> int:
        router_id = self._next_router_id
        self._next_router_id += 1
        router = Router(router_id=router_id, pop=pop, role=role)
        self._routers[router_id] = router
        self._graph.add_node(router_id)
        self._as_routers[pop.autonomous_system.asn].append(router_id)
        return router_id

    def _link_pops(self, pop_a: list[int], pop_b: list[int]) -> None:
        a = self._rng.choice(pop_a)
        b = self._rng.choice(pop_b)
        self._link(a, b)

    def _link(
        self,
        a: int,
        b: int,
        distance_km: float | None = None,
        *,
        relationship: str | None = None,
        provider: int | None = None,
    ) -> None:
        """Create a link with one interface per endpoint.

        ``relationship`` annotates the link's business type for policy
        routing: "internal" (same AS), "peer", or "c2p" with ``provider``
        naming the provider-side router.  Same-AS links are always
        internal; inter-AS links default to peer when unspecified.
        """
        if a == b or self._graph.has_edge(a, b):
            return
        router_a = self._routers[a]
        router_b = self._routers[b]
        if router_a.autonomous_system.asn == router_b.autonomous_system.asn:
            relationship, provider = "internal", None
        elif relationship is None:
            relationship = "peer"
        if relationship == "c2p" and provider not in (a, b):
            raise ValueError("c2p links must name one endpoint as provider")
        if distance_km is None:
            distance_km = router_a.city.location.distance_km(router_b.city.location)
            if distance_km < 0.5:
                distance_km = self.config.intra_city_km
        iface_a = self._allocators[router_a.autonomous_system.asn].next_address(router_a.city)
        iface_b = self._allocators[router_b.autonomous_system.asn].next_address(router_b.city)
        router_a.add_interface(iface_a)
        router_b.add_interface(iface_b)
        self._graph.add_edge(
            a,
            b,
            distance_km=distance_km,
            latency_ms=self.config.rtt_model.link_latency_ms(distance_km),
            ifaces={a: iface_a, b: iface_b},
            rel_type=relationship,
            provider=provider,
        )

    # -- inter-AS wiring -----------------------------------------------------

    def _routers_by_city(self, asns: list[int]) -> dict[tuple[str, str], list[int]]:
        by_city: dict[tuple[str, str], list[int]] = {}
        for asn in asns:
            for router_id in self._as_routers[asn]:
                city = self._routers[router_id].city
                by_city.setdefault((city.country, city.name), []).append(router_id)
        return by_city

    def _wire_transit_mesh(self, named: list[int]) -> None:
        """Peer the named transits with each other at shared cities."""
        by_city = self._routers_by_city(named)
        for routers in by_city.values():
            by_as: dict[int, list[int]] = {}
            for router_id in routers:
                by_as.setdefault(
                    self._routers[router_id].autonomous_system.asn, []
                ).append(router_id)
            asns = sorted(by_as)
            for i, asn_a in enumerate(asns):
                for asn_b in asns[i + 1 :]:
                    if self._rng.random() < 0.75:
                        self._link(
                            self._rng.choice(by_as[asn_a]),
                            self._rng.choice(by_as[asn_b]),
                            self.config.intra_city_km,
                        )

    def _wire_regional_uplinks(self, regional: list[int], named: list[int]) -> None:
        """Connect each regional transit to 1–2 named transits."""
        named_routers = [r for asn in named for r in self._as_routers[asn]]
        for asn in regional:
            uplinks = self._rng.randint(1, 2)
            for router_id in self._pick_border_routers(asn, uplinks):
                target = self._nearest_router(router_id, named_routers)
                self._link(router_id, target, relationship="c2p", provider=target)

    def _wire_stub_uplinks(self, stubs: list[int], providers: list[int]) -> None:
        """Connect each stub to its nearest provider PoP (plus backup)."""
        provider_routers = [r for asn in providers for r in self._as_routers[asn]]
        for asn in stubs:
            n_uplinks = 1 if self._rng.random() < 0.7 else 2
            for router_id in self._pick_border_routers(asn, n_uplinks):
                target = self._nearest_router(router_id, provider_routers)
                self._link(router_id, target, relationship="c2p", provider=target)

    def _pick_border_routers(self, asn: int, count: int) -> list[int]:
        routers = self._as_routers[asn]
        count = min(count, len(routers))
        return self._rng.sample(routers, count)

    def _nearest_router(self, router_id: int, candidates: list[int]) -> int:
        """The geographically nearest candidate (tie-broken by id)."""
        origin = self._routers[router_id].city.location
        return min(
            candidates,
            key=lambda rid: (
                origin.distance_km(self._routers[rid].city.location),
                rid,
            ),
        )

    def _ensure_connected(self, named: list[int]) -> None:
        """Stitch any disconnected components onto the transit core."""
        components = list(nx.connected_components(self._graph))
        if len(components) <= 1:
            return
        # Stitch onto the largest component, and only to routers inside it
        # — a nearest router in the orphan's own component would produce a
        # self-link or an existing edge, silently leaving it disconnected.
        components.sort(key=len, reverse=True)
        core_component = components[0]
        core_routers = [
            r for asn in named for r in self._as_routers[asn] if r in core_component
        ]
        if not core_routers:
            core_routers = sorted(core_component)
        for component in components[1:]:
            orphan = min(component)
            target = self._nearest_router(orphan, core_routers)
            self._link(orphan, target, relationship="c2p", provider=target)
