"""Synthetic Internet topology and measurement infrastructure."""

from repro.topology.ark import (
    ArkMonitor,
    ArkTopoDataset,
    collect_topology,
    place_monitors,
    random_routed_address,
)
from repro.topology.builder import (
    GENERIC_TIER1_SPECS,
    GROUND_TRUTH_DOMAIN_SPECS,
    SyntheticInternet,
    TopologyBuilder,
    TopologyConfig,
    TransitSpec,
)
from repro.topology.itdk import AliasMap, AliasResolver
from repro.topology.policy import (
    RelationshipError,
    is_valley_free,
    relationship_census,
    valley_free_paths,
)
from repro.topology.router import Interface, PoP, Router
from repro.topology.rtt import (
    FIBER_KM_PER_MS,
    RttModel,
    max_distance_km,
    propagation_rtt_ms,
)
from repro.topology.traceroute import Hop, TracerouteEngine, TracerouteResult

__all__ = [
    "ArkMonitor",
    "ArkTopoDataset",
    "collect_topology",
    "place_monitors",
    "random_routed_address",
    "GENERIC_TIER1_SPECS",
    "GROUND_TRUTH_DOMAIN_SPECS",
    "SyntheticInternet",
    "TopologyBuilder",
    "TopologyConfig",
    "TransitSpec",
    "AliasMap",
    "AliasResolver",
    "Interface",
    "PoP",
    "Router",
    "FIBER_KM_PER_MS",
    "RttModel",
    "max_distance_km",
    "propagation_rtt_ms",
    "RelationshipError",
    "is_valley_free",
    "relationship_census",
    "valley_free_paths",
    "Hop",
    "TracerouteEngine",
    "TracerouteResult",
]
