"""Round-trip-time model.

The RTT-proximity ground truth hinges on one physical fact the paper
states in §2.3.2: *"a 0.5 ms RTT between two locations maps to a distance
of at most 50 km — likely much less due to inflation in RTT
measurement."*  Signals in fiber propagate at roughly two-thirds the speed
of light, ~200 km/ms one way, i.e. ~100 km of distance per 1 ms of RTT;
real paths are longer than the geodesic (fiber routing, serialization,
queueing), so measured RTT only ever *over*-estimates distance.

:class:`RttModel` captures exactly that: a hard physical floor
(``min_rtt_ms``) plus multiplicative path inflation and additive queueing
noise, so simulated RTTs respect the same one-sided bound the paper's
threshold method relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Propagation speed of light in fiber, km per millisecond (one way).
FIBER_KM_PER_MS = 200.0


def propagation_rtt_ms(distance_km: float) -> float:
    """The physical minimum RTT over ``distance_km`` of geodesic distance."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative: {distance_km!r}")
    return 2.0 * distance_km / FIBER_KM_PER_MS


def max_distance_km(rtt_ms: float) -> float:
    """The farthest two endpoints can be, given a measured RTT.

    This is the inversion the ground-truth extraction uses: RTT ≤ 0.5 ms
    implies distance ≤ 50 km (§2.3.2).
    """
    if rtt_ms < 0:
        raise ValueError(f"RTT must be non-negative: {rtt_ms!r}")
    return rtt_ms * FIBER_KM_PER_MS / 2.0


@dataclass(frozen=True, slots=True)
class RttModel:
    """Generates plausible per-link RTT samples.

    ``inflation_mean``/``inflation_sigma`` parameterize a log-normal-ish
    multiplicative path-inflation factor (≥ 1): real fiber does not follow
    great circles.  ``noise_ms`` bounds a uniform additive term modelling
    serialization, forwarding, and queueing delay.  ``min_rtt_ms`` is the
    floor for same-building hops.
    """

    inflation_mean: float = 1.6
    inflation_sigma: float = 0.35
    noise_ms: float = 0.35
    min_rtt_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.inflation_mean < 1.0:
            raise ValueError("paths cannot be shorter than the geodesic")
        if self.inflation_sigma < 0 or self.noise_ms < 0 or self.min_rtt_ms < 0:
            raise ValueError("model parameters must be non-negative")

    def sample_rtt_ms(self, distance_km: float, rng: random.Random) -> float:
        """One RTT sample for a link spanning ``distance_km``.

        Guaranteed ≥ the physical propagation floor, so the 50 km-per-0.5 ms
        inversion stays sound in simulation just as in reality.
        """
        inflation = max(1.0, rng.lognormvariate(0.0, self.inflation_sigma) * self.inflation_mean)
        noise = rng.uniform(0.0, self.noise_ms)
        return max(self.min_rtt_ms, propagation_rtt_ms(distance_km) * inflation + noise)

    def link_latency_ms(self, distance_km: float) -> float:
        """Deterministic one-way link weight used for routing decisions."""
        return propagation_rtt_ms(distance_km) / 2.0 * self.inflation_mean + 0.01
