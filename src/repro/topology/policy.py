"""Valley-free (Gao–Rexford) policy routing.

Latency-shortest paths are a convenient routing model, but real
traceroutes follow BGP policy: a route learned from a customer may be
exported to anyone, while routes learned from providers or peers are only
exported to customers.  The resulting paths are *valley-free* — an uphill
customer→provider segment, at most one peer link, then a downhill
provider→customer segment.

The synthetic topology records each link's business relationship
(``internal`` within an AS, ``peer`` between transit operators, ``c2p``
for customer uplinks), so policy-compliant paths can be computed exactly:
a Dijkstra over the state-expanded graph (router × phase), with phases
``UP → PEERED → DOWN`` and transitions enforcing the Gao–Rexford export
rules.  The traceroute engine can run in either routing mode; the
calibrated study uses latency routing, and an ablation benchmark checks
the paper's findings survive the switch.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import networkx as nx

# Phases of a valley-free walk.
_UP = 0
_PEERED = 1
_DOWN = 2


class RelationshipError(ValueError):
    """Raised when a link carries no usable relationship annotation."""


def _transitions(rel_type: str, toward_provider: bool, phase: int) -> int | None:
    """The next phase when crossing a link, or ``None`` if forbidden.

    ``toward_provider`` orients ``c2p`` links: True when the step goes
    from the customer side to the provider side (uphill).
    """
    if rel_type == "internal":
        return phase
    if rel_type == "peer":
        return _PEERED if phase == _UP else None
    if rel_type == "c2p":
        if toward_provider:
            return _UP if phase == _UP else None
        return _DOWN  # provider → customer is always exportable
    raise RelationshipError(f"unknown relationship: {rel_type!r}")


def valley_free_paths(
    graph: nx.Graph,
    source: int,
    *,
    weight: str = "latency_ms",
) -> dict[int, list[int]]:
    """Cheapest valley-free path from ``source`` to every reachable router.

    Links must carry ``rel_type`` ("internal" | "peer" | "c2p") and, for
    ``c2p`` links, ``provider`` (the router id of the provider side).
    Routers unreachable under policy constraints are absent from the
    result — exactly the behaviour a policy-routed Internet exhibits when
    peering is incomplete.
    """
    # state = (cost, node, phase); best[(node, phase)] = cost
    best: dict[tuple[int, int], float] = {(source, _UP): 0.0}
    parents: dict[tuple[int, int], tuple[int, int] | None] = {(source, _UP): None}
    heap: list[tuple[float, int, int]] = [(0.0, source, _UP)]
    while heap:
        cost, node, phase = heapq.heappop(heap)
        if cost > best.get((node, phase), float("inf")):
            continue
        for neighbor in graph.adj[node]:
            data = graph.edges[node, neighbor]
            rel_type = data.get("rel_type")
            if rel_type is None:
                raise RelationshipError(
                    f"link {node}–{neighbor} lacks a rel_type annotation"
                )
            toward_provider = rel_type == "c2p" and data.get("provider") == neighbor
            next_phase = _transitions(rel_type, toward_provider, phase)
            if next_phase is None:
                continue
            next_cost = cost + data.get(weight, 1.0)
            key = (neighbor, next_phase)
            if next_cost < best.get(key, float("inf")) - 1e-12:
                best[key] = next_cost
                parents[key] = (node, phase)
                heapq.heappush(heap, (next_cost, neighbor, next_phase))

    # Collapse phases: keep each node's cheapest phase, rebuild its path.
    cheapest: dict[int, tuple[int, int]] = {}
    for (node, phase), cost in best.items():
        current = cheapest.get(node)
        if current is None or cost < best[current]:
            cheapest[node] = (node, phase)
    paths: dict[int, list[int]] = {}
    for node, key in cheapest.items():
        path = []
        cursor: tuple[int, int] | None = key
        while cursor is not None:
            path.append(cursor[0])
            cursor = parents[cursor]
        path.reverse()
        # Internal phase changes can repeat a node; compress duplicates.
        compressed = [path[0]]
        for hop in path[1:]:
            if hop != compressed[-1]:
                compressed.append(hop)
        paths[node] = compressed
    return paths


def is_valley_free(graph: nx.Graph, path: list[int]) -> bool:
    """Check a router-level path against the export rules (for tests)."""
    phase = _UP
    for u, v in zip(path, path[1:]):
        data = graph.edges[u, v]
        rel_type = data.get("rel_type")
        toward_provider = rel_type == "c2p" and data.get("provider") == v
        next_phase = _transitions(rel_type, toward_provider, phase)
        if next_phase is None:
            return False
        phase = next_phase
    return True


def relationship_census(graph: nx.Graph) -> Mapping[str, int]:
    """Count links per relationship type (sanity/reporting helper)."""
    census: dict[str, int] = {}
    for _, _, data in graph.edges(data=True):
        census[data.get("rel_type", "missing")] = (
            census.get(data.get("rel_type", "missing"), 0) + 1
        )
    return census
