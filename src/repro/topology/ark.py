"""Ark-style topology collection.

CAIDA's Archipelago (Ark) runs traceroutes from monitors around the world
toward randomly selected addresses in every routed /24 (§2.1).  The union
of responding hops over a collection window is the paper's
*Ark-topo-router* dataset: 1,638 K interface addresses over one week of
March 2016.

:func:`collect_topology` reproduces that process over the synthetic
Internet: monitors are placed in stub networks across all regions, targets
are drawn uniformly from delegated space, and every responding hop
interface lands in the dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.gazetteer import City
from repro.net.ip import IPv4Address, nth_address
from repro.topology.builder import SyntheticInternet
from repro.topology.traceroute import TracerouteEngine


@dataclass(frozen=True, slots=True)
class ArkMonitor:
    """A vantage point: a named box attached to an access router."""

    monitor_id: str
    router_id: int
    city: City


@dataclass(frozen=True, slots=True)
class ArkTopoDataset:
    """The collected router-interface dataset (the paper's Ark-topo-router).

    ``addresses`` is sorted and deduplicated; ``traces_run`` records the
    measurement effort behind it.
    """

    addresses: tuple[IPv4Address, ...]
    monitor_ids: tuple[str, ...]
    traces_run: int

    def __len__(self) -> int:
        return len(self.addresses)

    def __contains__(self, address: IPv4Address) -> bool:
        # Binary search would be possible, but datasets are built once and
        # membership tests go through sets in the analyses.
        return address in set(self.addresses)


def _monitor_id_for(city: City, taken: set[str]) -> str:
    """Ark-style monitor ids: a city tag plus the country code."""
    base = "".join(ch for ch in city.name.lower() if ch.isalpha())[:3]
    candidate = f"{base}-{city.country.lower()}"
    serial = 2
    while candidate in taken:
        candidate = f"{base}{serial}-{city.country.lower()}"
        serial += 1
    taken.add(candidate)
    return candidate


def place_monitors(
    internet: SyntheticInternet,
    count: int,
    rng: random.Random,
) -> tuple[ArkMonitor, ...]:
    """Pick ``count`` geographically-diverse access routers as monitors.

    Ark hosts monitors in research and eyeball networks, so candidates are
    routers of stub ASes; cities are deduplicated first to spread the
    vantage points.
    """
    if count <= 0:
        raise ValueError(f"monitor count must be positive: {count!r}")
    candidates: dict[tuple[str, str], list[int]] = {}
    for router in internet.routers.values():
        if not router.autonomous_system.is_transit and router.role == "access":
            key = (router.city.country, router.city.name)
            candidates.setdefault(key, []).append(router.router_id)
    if not candidates:
        raise ValueError("world has no stub access routers to host monitors")
    cities = sorted(candidates)
    rng.shuffle(cities)
    taken: set[str] = set()
    monitors = []
    for key in cities[: min(count, len(cities))]:
        router_id = rng.choice(candidates[key])
        city = internet.routers[router_id].city
        monitors.append(
            ArkMonitor(
                monitor_id=_monitor_id_for(city, taken),
                router_id=router_id,
                city=city,
            )
        )
    return tuple(monitors)


def random_routed_address(internet: SyntheticInternet, rng: random.Random) -> IPv4Address:
    """A uniformly random address inside some delegated prefix."""
    delegations = internet.registry.delegations()
    delegation = delegations[rng.randrange(len(delegations))]
    return nth_address(delegation.prefix, rng.randrange(delegation.prefix.num_addresses))


def collect_topology(
    internet: SyntheticInternet,
    monitors: tuple[ArkMonitor, ...],
    targets_per_monitor: int,
    rng: random.Random,
    *,
    engine: TracerouteEngine | None = None,
) -> ArkTopoDataset:
    """Run the collection campaign and return the interface dataset."""
    if not monitors:
        raise ValueError("at least one monitor is required")
    if targets_per_monitor <= 0:
        raise ValueError(f"targets_per_monitor must be positive: {targets_per_monitor!r}")
    if engine is None:
        engine = TracerouteEngine(internet, rng)
    seen: set[IPv4Address] = set()
    traces = 0
    for monitor in monitors:
        for _ in range(targets_per_monitor):
            target = random_routed_address(internet, rng)
            result = engine.trace_or_none(monitor.router_id, target)
            if result is None:
                continue
            traces += 1
            seen.update(result.responding_addresses())
    return ArkTopoDataset(
        addresses=tuple(sorted(seen)),
        monitor_ids=tuple(monitor.monitor_id for monitor in monitors),
        traces_run=traces,
    )
