"""Traceroute simulation over the synthetic Internet.

Both measurement substrates consume this engine: CAIDA-Ark-style topology
collection (:mod:`repro.topology.ark`) and RIPE-Atlas-style built-in
measurements (:mod:`repro.atlas.measurements`).

A trace follows the latency-weighted shortest path from the origin router
to the router homing the target address.  Every transit router answers
with its *ingress* interface — the address on the link the probe arrived
over — which is exactly why interface-level datasets see several addresses
per physical router.  Hop RTTs are cumulative sums of per-link RTT samples
from :class:`~repro.topology.rtt.RttModel`, so they respect the physical
floor the RTT-proximity method inverts (§2.3.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.net.ip import IPv4Address
from repro.net.registry import UnallocatedAddressError
from repro.topology.builder import SyntheticInternet
from repro.topology.policy import valley_free_paths


@dataclass(frozen=True, slots=True)
class Hop:
    """One traceroute hop: a responding interface (or ``None`` for ``*``)."""

    ttl: int
    address: IPv4Address | None
    rtt_ms: float | None

    @property
    def responded(self) -> bool:
        return self.address is not None


@dataclass(frozen=True, slots=True)
class TracerouteResult:
    """A completed trace from an origin router toward a target address."""

    origin_router: int
    target: IPv4Address
    hops: tuple[Hop, ...]
    reached: bool

    def responding_addresses(self) -> tuple[IPv4Address, ...]:
        """The interface addresses that answered, in hop order."""
        return tuple(hop.address for hop in self.hops if hop.address is not None)

    def __len__(self) -> int:
        return len(self.hops)


class TracerouteEngine:
    """Computes traces; caches one shortest-path tree per origin router.

    The cache is what makes scenario-scale collection practical: a monitor
    probing tens of thousands of targets performs one Dijkstra pass and
    then every trace is a dictionary walk.
    """

    def __init__(
        self,
        internet: SyntheticInternet,
        rng: random.Random,
        *,
        hop_loss_rate: float = 0.02,
        last_mile_rtt_ms: tuple[float, float] = (0.0, 0.0),
        routing: str = "latency",
    ):
        if not 0.0 <= hop_loss_rate < 1.0:
            raise ValueError(f"hop_loss_rate out of range: {hop_loss_rate!r}")
        if routing not in ("latency", "valley-free"):
            raise ValueError(f"unknown routing mode: {routing!r}")
        self.internet = internet
        self.routing = routing
        self._rng = rng
        self._hop_loss_rate = hop_loss_rate
        self._last_mile = last_mile_rtt_ms
        self._path_cache: dict[int, dict[int, list[int]]] = {}

    def paths_from(self, origin_router: int) -> dict[int, list[int]]:
        """Cheapest paths from ``origin_router`` under the routing mode.

        ``latency`` computes latency-shortest paths (a clean baseline);
        ``valley-free`` enforces Gao–Rexford export rules, under which
        some destinations may be unreachable (missing from the result) —
        just like the policy-routed Internet.
        """
        cached = self._path_cache.get(origin_router)
        if cached is None:
            if self.routing == "valley-free":
                cached = valley_free_paths(
                    self.internet.graph, origin_router, weight="latency_ms"
                )
            else:
                cached = nx.single_source_dijkstra_path(
                    self.internet.graph, origin_router, weight="latency_ms"
                )
            self._path_cache[origin_router] = cached
        return cached

    def trace(self, origin_router: int, target: IPv4Address) -> TracerouteResult:
        """Trace from a router toward a target address.

        Raises :class:`~repro.net.registry.UnallocatedAddressError` for
        targets outside delegated space (nothing to route toward), and
        returns an unreachable result when the destination router exists
        but the target address is not a live interface on it.
        """
        destination_router = self.internet.home_router_for(target)
        path = self.paths_from(origin_router).get(destination_router)
        return self._trace_along(origin_router, target, destination_router, path)

    def trace_with_tree(
        self,
        origin_router: int,
        target: IPv4Address,
        destination_paths: dict[int, list[int]],
    ) -> TracerouteResult:
        """Trace using a precomputed tree rooted at the *destination*.

        Link weights are symmetric, so the reverse of the destination's
        shortest path to the origin is the origin's shortest path to the
        destination.  This lets a campaign with many origins and few
        targets (RIPE Atlas built-ins: thousands of probes, ~13 roots)
        run one Dijkstra per target instead of one per probe.
        """
        destination_router = self.internet.home_router_for(target)
        reverse = destination_paths.get(origin_router)
        path = list(reversed(reverse)) if reverse is not None else None
        return self._trace_along(origin_router, target, destination_router, path)

    def _trace_along(
        self,
        origin_router: int,
        target: IPv4Address,
        destination_router: int,
        path: list[int] | None,
    ) -> TracerouteResult:
        if path is None:  # disconnected — cannot happen in built worlds
            return TracerouteResult(origin_router, target, (), reached=False)
        rng = self._rng
        hops: list[Hop] = []
        elapsed = rng.uniform(*self._last_mile)
        for ttl, (u, v) in enumerate(zip(path, path[1:]), start=1):
            distance = self.internet.link_distance_km(u, v)
            elapsed += self.internet.rtt_model.sample_rtt_ms(distance, rng)
            if rng.random() < self._hop_loss_rate:
                hops.append(Hop(ttl=ttl, address=None, rtt_ms=None))
            else:
                hops.append(
                    Hop(
                        ttl=ttl,
                        address=self.internet.edge_interface(u, v),
                        rtt_ms=round(elapsed, 3),
                    )
                )
        reached = self.internet.is_interface(target) and (
            self.internet.router_of(target).router_id == destination_router
        )
        if reached and (not hops or hops[-1].address != target):
            # The destination answers from the probed address itself.
            elapsed += self.internet.rtt_model.sample_rtt_ms(0.0, rng)
            hops.append(Hop(ttl=len(hops) + 1, address=target, rtt_ms=round(elapsed, 3)))
        return TracerouteResult(
            origin_router=origin_router,
            target=target,
            hops=tuple(hops),
            reached=reached,
        )

    def trace_or_none(self, origin_router: int, target: IPv4Address) -> TracerouteResult | None:
        """Like :meth:`trace` but unrouted targets yield ``None``."""
        try:
            return self.trace(origin_router, target)
        except UnallocatedAddressError:
            return None
