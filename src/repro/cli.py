"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — build a scenario, run the full study, print (or save) the
  §4–§6 report;
* ``describe`` — build a scenario and print its inventory;
* ``export-db`` — write one database snapshot as CSV (GeoLite2-style or
  IP2Location-style);
* ``export-ground-truth`` — write the merged ground-truth dataset as the
  IMPACT-style release CSV;
* ``diff-db`` — age a snapshot by N months and print the release diff;
* ``trace`` — run the study with tracing on and print the span tree with
  per-stage share-of-total;
* ``compile`` — build a scenario and write its four databases as
  compiled-index snapshots (``*.rgix``) a server loads at boot, plus
  the precomputed cross-vendor answer plane (``plane.rgpl``) unless
  ``--no-plane``;
* ``serve`` — run the HTTP JSON geolocation service (from compiled
  snapshots, a snapshot store's current generation via ``--store``
  [optionally hot-reloading newly published generations with
  ``--watch``], or compiling in-process when none are given); the
  answer plane is loaded/compiled alongside unless ``--no-plane``;
* ``snapshot`` — manage a snapshot store: ``publish`` compiles the
  scenario (optionally aged by ``--months`` to model a drifted vendor
  release) and commits it as a new generation, ``list`` shows every
  generation with the live one starred, ``rollback`` points ``CURRENT``
  one good generation back;
* ``replay`` — fire seeded Zipf traffic at a live server (open-loop, at
  a target offered rate) and report achieved rps, coordinated-omission-
  safe latency quantiles, error rate, and the server's own ``/statusz``
  window, with optional ``--max-p99-ms`` / ``--max-error-rate`` gates
  for CI.  ``compile --stream N`` compiles a streamed N-interface scale
  tier (memory-bounded; 1M+ interfaces) instead of the materialized
  scenario.
* ``enrich`` — run the streaming enrichment firehose (synthetic
  traceroute/flow/access-log events at a target rate) through an
  in-process engine with whois fan-out and drift detection, and report
  sustained events/s, end-to-end latency quantiles, queue high-water
  marks, shed counts, and drift-alert totals, with optional
  ``--max-p99-ms`` / ``--max-shed`` gates for CI.

The global ``--verbose`` flag logs each build phase and pipeline stage to
stderr as it completes; ``run --metrics PATH`` writes the JSON run
manifest (span tree + counters + scenario config).  Without either, the
no-op tracer is used and output is identical to an uninstrumented build.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.pipeline import RouterGeolocationStudy
from repro.geodb.diff import diff_snapshots, refresh_snapshot
from repro.geodb.formats import export_geolite_csv, export_ip2location_csv
from repro.groundtruth.io import export_ground_truth_csv
from repro.obs import NOOP_TRACER, MetricsRegistry, StageLogger, Tracer, render_span_tree
from repro.scenario.build import build_scenario


def _package_version() -> str:
    """The installed package version, falling back to the source tree's.

    Deployed servers report this (``repro --version``, and the serve
    banner) so an operator can tell what build answered a query.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Router geolocation evaluation (IMC 2017 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_package_version()}"
    )
    parser.add_argument("--seed", type=int, default=2016, help="scenario seed")
    parser.add_argument("--scale", type=float, default=0.1, help="world scale factor")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log each build phase and pipeline stage to stderr",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run the full study and print the report")
    run.add_argument("-o", "--output", help="write the report to a file")
    run.add_argument(
        "--markdown", action="store_true", help="render the report as Markdown"
    )
    run.add_argument(
        "--metrics", metavar="PATH",
        help="write the JSON run manifest (span tree + counters + config)",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes for lookup-frame construction (default: serial;"
             " pays off from ~100K addresses)",
    )

    commands.add_parser(
        "trace",
        help="run the study and print the span tree with per-stage share-of-total",
    )

    commands.add_parser("describe", help="build a scenario and print its inventory")

    export_db = commands.add_parser("export-db", help="export a database snapshot as CSV")
    export_db.add_argument(
        "database",
        choices=["IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity"],
    )
    export_db.add_argument(
        "--format", choices=["geolite", "ip2location"], default="geolite"
    )
    export_db.add_argument("-o", "--output", help="write the CSV to a file")

    export_gt = commands.add_parser(
        "export-ground-truth", help="export the merged ground truth as CSV"
    )
    export_gt.add_argument("-o", "--output", help="write the CSV to a file")

    verify = commands.add_parser(
        "verify-release",
        help="check a release package re-derives its published ground truth",
    )
    verify.add_argument("directory")

    export_artifacts = commands.add_parser(
        "export-artifacts",
        help="write the scenario's full release package to a directory",
    )
    export_artifacts.add_argument("directory")

    diff = commands.add_parser(
        "diff-db", help="diff a snapshot against an aged re-release"
    )
    diff.add_argument(
        "database",
        choices=["IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity"],
    )
    diff.add_argument("--months", type=float, default=50 / 30,
                      help="age of the second snapshot (default: the paper's ~50 days)")

    compile_cmd = commands.add_parser(
        "compile",
        help="compile the scenario's databases into servable index snapshots",
    )
    compile_cmd.add_argument("directory", help="where to write the *.rgix snapshots")
    compile_cmd.add_argument(
        "--no-plane", dest="plane", action="store_false",
        help="skip the cross-vendor answer plane (plane.rgpl)",
    )
    compile_cmd.add_argument(
        "--stream", type=int, default=None, metavar="INTERFACES",
        help="compile a streamed INTERFACES-interface scale tier instead of"
             " the materialized scenario (memory-bounded; ignores --scale)",
    )

    replay_cmd = commands.add_parser(
        "replay",
        help="replay seeded Zipf traffic against a live server (open-loop,"
             " coordinated-omission-safe)",
    )
    replay_cmd.add_argument(
        "--url",
        help="target server URL (default: compile the scenario and boot an"
             " in-process server for the run)",
    )
    replay_cmd.add_argument(
        "--snapshots", metavar="DIR",
        help="draw the address pool from compiled snapshots in DIR"
             " (required with --url; defaults to the in-process indexes)",
    )
    replay_cmd.add_argument(
        "--rate", type=float, default=500.0, help="offered request rate (rps)"
    )
    replay_cmd.add_argument(
        "--duration", type=float, default=5.0, help="run length in seconds"
    )
    replay_cmd.add_argument(
        "--clients", type=int, default=4, help="concurrent keep-alive clients"
    )
    replay_cmd.add_argument(
        "--zipf-s", type=float, default=1.1, dest="zipf_s",
        help="Zipf popularity exponent (0 = uniform)",
    )
    replay_cmd.add_argument(
        "--miss-fraction", type=float, default=0.0,
        help="fraction of requests drawn from guaranteed-uncovered space",
    )
    replay_cmd.add_argument(
        "--pool", type=int, default=None, metavar="N",
        help="limit the popularity pool to N addresses",
    )
    replay_cmd.add_argument(
        "--timeout", type=float, default=5.0, help="per-request timeout (s)"
    )
    replay_cmd.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    replay_cmd.add_argument(
        "--max-p99-ms", type=float, default=None, metavar="MS",
        help="exit 1 if schedule-relative p99 exceeds MS",
    )
    replay_cmd.add_argument(
        "--max-error-rate", type=float, default=None, metavar="R",
        help="exit 1 if the error rate exceeds R",
    )

    enrich_cmd = commands.add_parser(
        "enrich",
        help="run the streaming enrichment firehose against an in-process"
             " engine (open-loop, seed-deterministic)",
    )
    enrich_cmd.add_argument(
        "--rate", type=float, default=2000.0, help="offered event rate (events/s)"
    )
    enrich_cmd.add_argument(
        "--duration", type=float, default=10.0, help="run length in seconds"
    )
    enrich_cmd.add_argument(
        "--events", type=int, default=None, metavar="N",
        help="stop after N events instead of rate × duration",
    )
    enrich_cmd.add_argument(
        "--policy", choices=["block", "shed"], default="block",
        help="overload policy when the event queue fills",
    )
    enrich_cmd.add_argument(
        "--workers", type=int, default=2, help="whois worker threads"
    )
    enrich_cmd.add_argument(
        "--batch-size", type=int, default=64, dest="batch_size",
        help="micro-batch size for engine lookups",
    )
    enrich_cmd.add_argument(
        "--linger-ms", type=float, default=5.0, dest="linger_ms",
        help="max time the oldest event waits for its batch to fill",
    )
    enrich_cmd.add_argument(
        "--queue", type=int, default=2048,
        help="event/done queue capacity (bounds memory and latency)",
    )
    enrich_cmd.add_argument(
        "--zipf-s", type=float, default=1.1, dest="zipf_s",
        help="Zipf popularity exponent (0 = uniform)",
    )
    enrich_cmd.add_argument(
        "--miss-fraction", type=float, default=0.0,
        help="fraction of events addressed from guaranteed-uncovered space",
    )
    enrich_cmd.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    enrich_cmd.add_argument(
        "--max-p99-ms", type=float, default=None, metavar="MS",
        help="exit 1 if end-to-end p99 event latency exceeds MS",
    )
    enrich_cmd.add_argument(
        "--max-shed", type=int, default=None, metavar="N",
        help="exit 1 if more than N events were shed",
    )

    serve = commands.add_parser(
        "serve", help="run the HTTP JSON geolocation service"
    )
    serve.add_argument(
        "--snapshots", metavar="DIR",
        help="serve compiled snapshots from DIR (default: build and compile"
             " the scenario in-process)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listening port (0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU lookup-cache capacity (0 disables the cache)",
    )
    serve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="inject the default chaos fault mix (seeded, deterministic) to"
             " exercise degraded serving; never use in production",
    )
    serve.add_argument(
        "--no-plane", dest="plane", action="store_false",
        help="serve without the precomputed answer plane (always resolve live)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="log a one-line stderr record (with the trace id) for any"
             " request at least this slow",
    )
    serve.add_argument(
        "--trace-ring", type=int, default=32, metavar="N",
        help="retain the N slowest recent request traces for /tracez",
    )
    serve.add_argument(
        "--store", metavar="DIR",
        help="serve a snapshot store's current generation"
             " (published by `repro snapshot publish`)",
    )
    serve.add_argument(
        "--watch", action="store_true",
        help="with --store: poll the store and hot-swap newly published"
             " generations into the running server (bad candidates are"
             " rejected and rolled back)",
    )
    serve.add_argument(
        "--watch-interval", type=float, default=2.0, metavar="S",
        help="store poll interval in seconds (default: 2.0)",
    )

    snapshot = commands.add_parser(
        "snapshot", help="manage a snapshot store's generations"
    )
    snapshot_cmds = snapshot.add_subparsers(dest="snapshot_command", required=True)
    publish = snapshot_cmds.add_parser(
        "publish",
        help="compile the scenario and publish it as a new generation",
    )
    publish.add_argument("store", help="store directory (created if missing)")
    publish.add_argument(
        "--months", type=float, default=0.0,
        help="age every vendor snapshot by this many months before"
             " compiling (models a drifted release; default: 0)",
    )
    publish.add_argument(
        "--no-plane", dest="plane", action="store_false",
        help="publish without the precomputed answer plane",
    )
    snapshot_list = snapshot_cmds.add_parser(
        "list", help="list the store's generations (live one starred)"
    )
    snapshot_list.add_argument("store", help="store directory")
    snapshot_rollback = snapshot_cmds.add_parser(
        "rollback", help="point CURRENT one good generation back"
    )
    snapshot_rollback.add_argument("store", help="store directory")
    return parser


def _emit(text: str, output: str | None) -> int:
    """Print ``text`` or write it to ``output``; 1 on an unwritable path."""
    if output:
        try:
            with open(output, "w") as handle:
                handle.write(text if text.endswith("\n") else text + "\n")
        except OSError as exc:
            print(f"error: cannot write {output}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {output}")
    else:
        print(text)
    return 0


def _chaos_injector(seed: int | None):
    """Build the seeded default-chaos injector, or ``None`` when disabled."""
    if seed is None:
        return None
    from repro.faults import FaultInjector, default_chaos_specs

    print(f"chaos mode: injecting faults with seed {seed}", file=sys.stderr)
    return FaultInjector(seed, default_chaos_specs())


def _run_server(
    engine,
    host: str,
    port: int,
    *,
    slow_ms: float | None = None,
    trace_capacity: int = 32,
    watcher=None,
) -> int:
    """Bind, announce, and serve until interrupted (SIGINT exits 0)."""
    from repro.serve.http import GeoServer

    try:
        server = GeoServer(
            engine,
            host=host,
            port=port,
            slow_ms=slow_ms,
            trace_capacity=trace_capacity,
        )
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 1
    if watcher is not None:
        # The watcher predates the server's registry and trace ring;
        # thread them in now, then start polling.  Shutdown is handled
        # by the engine: server_close -> engine.close -> watcher.stop.
        watcher.attach_metrics(server.metrics)
        watcher.attach_trace_sink(server.traces)
        watcher.start()
        print(
            f"store watcher: polling every {watcher.interval_s:g}s",
            file=sys.stderr,
        )
    databases = ", ".join(engine.database_names())
    # The port is the last colon field of the URL: scripted callers (the
    # CI smoke) parse this line, so keep it stable and flushed.
    print(
        f"repro {_package_version()} serving [{databases}] on {server.url}",
        flush=True,
    )
    server.run()
    print("shut down cleanly")
    return 0


def _canary_sample(indexes, per_vendor: int = 64) -> list[int]:
    """Probe addresses for the store watcher's regression canary.

    A spread of interval-start addresses from every vendor's own index:
    by construction they cover the served address space, so a candidate
    generation that lost a chunk of coverage shows up without needing
    the scenario (or any traffic) in memory.
    """
    addresses: set[int] = set()
    for index in indexes.values():
        starts = index.parts()[0]
        step = max(1, len(starts) // per_vendor)
        addresses.update(starts[::step])
    return sorted(addresses)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "serve" and args.store:
        # Serving from a store: load CURRENT, optionally keep watching it.
        from repro.serve.engine import ServingEngine
        from repro.serve.errors import ServeError
        from repro.serve.store import SnapshotStore, StoreWatcher

        if args.snapshots:
            print(
                "error: --store and --snapshots are mutually exclusive",
                file=sys.stderr,
            )
            return 1
        try:
            store = SnapshotStore(args.store, create=False)
            current = store.current_id()
            if current is None:
                print(
                    f"error: {args.store} has no published generation —"
                    f" run `repro snapshot publish {args.store}` first",
                    file=sys.stderr,
                )
                return 1
            record, indexes, plane = store.load(current)
            engine = ServingEngine(
                indexes,
                cache_size=args.cache_size or None,
                injector=_chaos_injector(args.chaos_seed),
                plane=plane if args.plane else None,
                generation_id=record.generation,
                generation_source="store",
            )
        except (ServeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(
            f"snapshot store: {args.store} (generation {record.generation})",
            file=sys.stderr,
        )
        watcher = None
        if args.watch:
            watcher = StoreWatcher(
                store,
                engine,
                interval_s=args.watch_interval,
                canary_addresses=_canary_sample(indexes),
            )
        return _run_server(
            engine,
            args.host,
            args.port,
            slow_ms=args.slow_ms,
            trace_capacity=args.trace_ring,
            watcher=watcher,
        )

    if args.command == "snapshot" and args.snapshot_command in ("list", "rollback"):
        # Pure store inspection — no scenario build.
        from repro.serve.store import SnapshotStore, StoreError

        try:
            store = SnapshotStore(args.store, create=False)
            if args.snapshot_command == "rollback":
                restored = store.rollback()
                print(f"rolled back: CURRENT -> generation {restored}")
                return 0
            records = store.generations()
            if not records:
                print(f"{args.store}: no generations published")
                return 0
            current = store.current_id()
            for record in records:
                marker = "*" if record.generation == current else " "
                vendors = ",".join(sorted(record.vendors))
                plane = "plane" if record.plane else "no-plane"
                line = f"{marker} {record.generation:6d}  {vendors}  {plane}"
                if record.rejected:
                    line += f"  REJECTED: {record.reason or 'unknown reason'}"
                print(line)
            return 0
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "serve" and args.snapshots:
        # Serving precompiled snapshots skips the scenario build entirely —
        # that is the point of compiling.
        from pathlib import Path

        from repro.serve.engine import ServingEngine
        from repro.serve.plane import PLANE_SUFFIX, load_plane
        from repro.serve.snapshot import SnapshotError

        plane = None
        plane_path = Path(args.snapshots) / f"plane{PLANE_SUFFIX}"
        try:
            if args.plane and plane_path.is_file():
                plane = load_plane(plane_path)
            engine = ServingEngine.from_snapshot_dir(
                args.snapshots,
                cache_size=args.cache_size or None,
                injector=_chaos_injector(args.chaos_seed),
                plane=plane,
            )
        except (SnapshotError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if plane is not None:
            print(
                f"answer plane: {plane.interval_count} intervals,"
                f" {plane.cell_count} cells",
                file=sys.stderr,
            )
        return _run_server(
            engine,
            args.host,
            args.port,
            slow_ms=args.slow_ms,
            trace_capacity=args.trace_ring,
        )

    if args.command == "verify-release":
        # Verification works on released files alone: no scenario build.
        from repro.scenario.artifacts import ArtifactError, verify_release

        try:
            verify_release(args.directory)
        except ArtifactError as exc:
            print(f"FAILED: {exc}")
            return 1
        print("release verified: ground truth re-derives from raw measurements")
        return 0

    if args.command == "compile" and args.stream:
        # Scale-tier compile: streamed world, no materialized scenario.
        from repro.scenario.build import build_scale_tier
        from repro.serve.plane import PLANE_SUFFIX, save_plane
        from repro.serve.snapshot import SnapshotError, save_index_set

        tracer = Tracer(listener=StageLogger()) if args.verbose else NOOP_TRACER
        tier = build_scale_tier(interfaces=args.stream, seed=args.seed, tracer=tracer)
        try:
            root = save_index_set(tier.indexes, args.directory)
            if args.plane:
                save_plane(tier.plane, root / f"plane{PLANE_SUFFIX}")
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        stats = tier.stats
        for name, vendor in sorted(stats["vendors"].items()):  # type: ignore[union-attr]
            print(
                f"compiled {name}: {vendor['entries']} entries ->"
                f" {vendor['intervals']} intervals"
            )
        print(
            f"scale tier: {stats['interfaces']} interfaces, {stats['ases']} ASes,"
            f" {stats['blocks']} blocks; plane {stats['plane_intervals']} intervals;"
            f" built in {stats['total_s']:.1f}s, peak RSS"
            f" {int(stats['peak_rss_kb']) // 1024} MB"
        )
        print(f"wrote {len(tier.indexes)} snapshots to {root}")
        return 0

    if args.command == "replay":
        from repro.loadgen import (
            ReplayConfig,
            WorkloadConfig,
            ZipfWorkload,
            covered_pool,
            replay,
        )

        tracer = Tracer(listener=StageLogger()) if args.verbose else NOOP_TRACER
        metrics = MetricsRegistry() if args.verbose else None
        server = None
        try:
            if args.url:
                if not args.snapshots:
                    print(
                        "error: --url needs --snapshots DIR for the address"
                        " pool (the client cannot read the server's indexes)",
                        file=sys.stderr,
                    )
                    return 1
                from repro.serve.snapshot import SnapshotError, load_index_set

                try:
                    indexes = load_index_set(args.snapshots)
                except (SnapshotError, ValueError) as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 1
                url = args.url
            else:
                # Self-contained mode: compile the scenario and boot a
                # server in-process, replay, then tear it down.
                from repro.serve.engine import ServingEngine
                from repro.serve.http import GeoServer
                from repro.serve.index import CompiledIndex
                from repro.serve.plane import compile_plane

                scenario = build_scenario(
                    seed=args.seed, scale=args.scale, tracer=tracer
                )
                indexes = {
                    name: CompiledIndex.compile(database)
                    for name, database in sorted(scenario.databases.items())
                }
                engine = ServingEngine(indexes, plane=compile_plane(indexes))
                server = GeoServer(engine, metrics=metrics or MetricsRegistry())
                server.start_background()
                url = server.url
                print(f"in-process server on {url}", file=sys.stderr)

            workload = ZipfWorkload(
                covered_pool(indexes),
                WorkloadConfig(
                    seed=args.seed,
                    zipf_s=args.zipf_s,
                    miss_fraction=args.miss_fraction,
                    pool_limit=args.pool,
                ),
            )
            try:
                report = replay(
                    url,
                    workload.addresses(),
                    ReplayConfig(
                        rate=args.rate,
                        duration_s=args.duration,
                        clients=args.clients,
                        timeout_s=args.timeout,
                    ),
                    metrics=metrics,
                    tracer=tracer,
                )
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        finally:
            if server is not None:
                server.stop()

        if args.json:
            import json as _json

            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        failed = False
        if args.max_error_rate is not None and report.error_rate > args.max_error_rate:
            print(
                f"GATE FAILED: error rate {report.error_rate:.4f} >"
                f" {args.max_error_rate}",
                file=sys.stderr,
            )
            failed = True
        if (
            args.max_p99_ms is not None
            and report.latency_ms["p99"] > args.max_p99_ms
        ):
            print(
                f"GATE FAILED: p99 {report.latency_ms['p99']:.3f} ms >"
                f" {args.max_p99_ms} ms",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    # Instrumentation is opt-in: --verbose, run --metrics, and trace all
    # need a recording tracer; everything else keeps the zero-cost no-op.
    instrumented = (
        args.verbose
        or args.command == "trace"
        or bool(getattr(args, "metrics", None))
    )
    if instrumented:
        tracer = Tracer(listener=StageLogger() if args.verbose else None)
        metrics = MetricsRegistry()
    else:
        tracer = NOOP_TRACER
        metrics = None

    scenario = build_scenario(
        seed=args.seed, scale=args.scale, tracer=tracer, metrics=metrics
    )

    if args.command == "describe":
        print(scenario.describe())
        return 0

    if args.command == "enrich":
        from repro.enrich import (
            EnrichConfig,
            EnrichmentPipeline,
            EventConfig,
            EventSource,
        )
        from repro.loadgen import covered_pool
        from repro.serve.engine import ServingEngine
        from repro.serve.index import CompiledIndex
        from repro.serve.plane import compile_plane

        indexes = {
            name: CompiledIndex.compile(database)
            for name, database in sorted(scenario.databases.items())
        }
        engine = ServingEngine(
            indexes, plane=compile_plane(indexes), metrics=MetricsRegistry()
        )
        source = EventSource(
            covered_pool(indexes),
            EventConfig(
                seed=args.seed,
                rate=args.rate,
                zipf_s=args.zipf_s,
                miss_fraction=args.miss_fraction,
            ),
        )
        pipeline = EnrichmentPipeline(
            engine,
            whois=scenario.internet.whois,
            config=EnrichConfig(
                batch_size=args.batch_size,
                linger_ms=args.linger_ms,
                event_queue=args.queue,
                done_queue=args.queue,
                whois_workers=args.workers,
                overload=args.policy,
            ),
            metrics=MetricsRegistry(),
        )
        try:
            report = pipeline.run(
                source.events(),
                rate=args.rate,
                duration_s=args.duration,
                max_events=args.events,
            )
        except (RuntimeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

        if args.json:
            import json as _json

            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        failed = False
        if args.max_shed is not None and report.shed > args.max_shed:
            print(
                f"GATE FAILED: shed {report.shed} > {args.max_shed}",
                file=sys.stderr,
            )
            failed = True
        if (
            args.max_p99_ms is not None
            and report.latency_ms.get("p99", 0.0) > args.max_p99_ms
        ):
            print(
                f"GATE FAILED: event p99 {report.latency_ms.get('p99', 0.0):.3f} ms"
                f" > {args.max_p99_ms} ms",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    if args.command == "run":
        study = RouterGeolocationStudy.from_scenario(
            scenario, tracer=tracer, metrics=metrics, frame_workers=args.workers
        )
        result = study.run()
        report = result.render_markdown() if args.markdown else result.render_summary()
        status = _emit(report, args.output)
        if args.metrics:
            status = max(status, _emit(result.manifest.to_json(), args.metrics))
        return status

    if args.command == "trace":
        RouterGeolocationStudy.from_scenario(
            scenario, tracer=tracer, metrics=metrics
        ).run()
        for root in tracer.roots:
            print(render_span_tree(root))
            print()
        print(metrics.render())
        return 0

    if args.command == "export-db":
        database = scenario.databases[args.database]
        if args.format == "geolite":
            text = export_geolite_csv(database)
        else:
            text = export_ip2location_csv(database)
        return _emit(text, args.output)

    if args.command == "export-ground-truth":
        return _emit(export_ground_truth_csv(scenario.ground_truth), args.output)

    if args.command == "export-artifacts":
        from repro.scenario.artifacts import export_scenario_artifacts

        root = export_scenario_artifacts(scenario, args.directory)
        print(f"wrote release package to {root}")
        return 0

    if args.command == "compile":
        from repro.serve.index import CompiledIndex
        from repro.serve.plane import PLANE_SUFFIX, compile_plane, save_plane
        from repro.serve.snapshot import SnapshotError, save_index_set

        indexes = {
            name: CompiledIndex.compile(database)
            for name, database in sorted(scenario.databases.items())
        }
        try:
            root = save_index_set(indexes, args.directory)
            plane = compile_plane(indexes) if args.plane else None
            if plane is not None:
                save_plane(plane, root / f"plane{PLANE_SUFFIX}")
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for name, index in sorted(indexes.items()):
            print(
                f"compiled {name}: {index.source_entries} entries ->"
                f" {index.interval_count} intervals"
            )
        if plane is not None:
            print(
                f"compiled answer plane: {plane.interval_count} intervals,"
                f" {plane.cell_count} cells"
            )
        print(f"wrote {len(indexes)} snapshots to {root}")
        return 0

    if args.command == "serve":
        from repro.serve.engine import ServingEngine
        from repro.serve.index import CompiledIndex
        from repro.serve.plane import compile_plane

        indexes = {
            name: CompiledIndex.compile(database)
            for name, database in sorted(scenario.databases.items())
        }
        engine = ServingEngine(
            indexes,
            cache_size=args.cache_size or None,
            injector=_chaos_injector(args.chaos_seed),
            plane=compile_plane(indexes) if args.plane else None,
        )
        return _run_server(
            engine,
            args.host,
            args.port,
            slow_ms=args.slow_ms,
            trace_capacity=args.trace_ring,
        )

    if args.command == "snapshot":  # publish (list/rollback exit earlier)
        from repro.serve.errors import ServeError
        from repro.serve.index import CompiledIndex
        from repro.serve.plane import compile_plane
        from repro.serve.store import SnapshotStore

        try:
            store = SnapshotStore(args.store)
            databases = scenario.databases
            if args.months:
                # Drift the vendor tables before compiling, seeded per
                # publish so successive releases diverge like real ones.
                drift_seed = args.seed + 1 + (store.latest_id() or 0)
                databases = {
                    name: refresh_snapshot(
                        database,
                        scenario.internet.gazetteer,
                        months=args.months,
                        seed=drift_seed,
                    )
                    for name, database in sorted(databases.items())
                }
            indexes = {
                name: CompiledIndex.compile(database)
                for name, database in sorted(databases.items())
            }
            plane = compile_plane(indexes) if args.plane else None
            record = store.publish(
                indexes,
                plane,
                metadata={
                    "seed": args.seed,
                    "scale": args.scale,
                    "months": args.months,
                },
            )
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        suffix = ", with answer plane" if plane is not None else ""
        print(
            f"published generation {record.generation} to {args.store}"
            f" ({len(indexes)} vendors{suffix})"
        )
        return 0

    if args.command == "diff-db":
        base = scenario.databases[args.database]
        later = refresh_snapshot(
            base,
            scenario.internet.gazetteer,
            months=args.months,
            seed=args.seed + 1,
        )
        print(diff_snapshots(base, later).render())
        return 0

    raise AssertionError(f"unhandled command: {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
