"""Ground-truth dataset statistics — Table 1 of the paper.

For each ground-truth dataset: total addresses, number of distinct
countries, number of distinct coordinates, and the per-RIR address counts
(RIR learned via the Team-Cymru-style whois service, as in §2.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.geo.rir import RIR, RIR_ORDER
from repro.groundtruth.record import GroundTruthSet
from repro.net.registry import TeamCymruWhois


@dataclass(frozen=True, slots=True)
class GroundTruthRow:
    """One row of Table 1."""

    label: str
    total: int
    countries: int
    unique_coordinates: int
    per_rir: Mapping[RIR, int]

    def render(self) -> str:
        """One-line text rendering of this Table-1 row."""
        rir_cells = "  ".join(
            f"{rir.value}={self.per_rir.get(rir, 0)}" for rir in RIR_ORDER
        )
        return (
            f"{self.label:<14} total={self.total:<7} countries={self.countries:<4} "
            f"lat/lon={self.unique_coordinates:<5} {rir_cells}"
        )


def ground_truth_row(
    label: str, dataset: GroundTruthSet, whois: TeamCymruWhois
) -> GroundTruthRow:
    """Compute one Table-1 row for a dataset."""
    per_rir: dict[RIR, int] = {rir: 0 for rir in RIR}
    for record in dataset:
        per_rir[whois.lookup(record.address).registry] += 1
    return GroundTruthRow(
        label=label,
        total=len(dataset),
        countries=len(dataset.countries()),
        unique_coordinates=len(dataset.unique_coordinates()),
        per_rir=per_rir,
    )


def table1(
    dns_dataset: GroundTruthSet,
    rtt_dataset: GroundTruthSet,
    whois: TeamCymruWhois,
) -> tuple[GroundTruthRow, GroundTruthRow]:
    """Both Table-1 rows, in the paper's order."""
    return (
        ground_truth_row("DNS-based", dns_dataset, whois),
        ground_truth_row("RTT-proximity", rtt_dataset, whois),
    )
