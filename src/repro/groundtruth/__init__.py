"""Ground-truth construction and validation (paper §2.3 and §3)."""

from repro.groundtruth.dnsbased import (
    DnsGroundTruthResult,
    DnsGroundTruthStats,
    build_dns_ground_truth,
)
from repro.groundtruth.hintverify import (
    HintVerdict,
    HintVerificationReport,
    VerifiedHint,
    decode_hinted_addresses,
    verify_hints,
)
from repro.groundtruth.io import (
    GroundTruthFormatError,
    export_ground_truth_csv,
    import_ground_truth_csv,
)
from repro.groundtruth.record import (
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
    merge_ground_truth,
)
from repro.groundtruth.rttproximity import (
    RttProximityConfig,
    RttProximityResult,
    RttProximityStats,
    build_rtt_ground_truth,
)
from repro.groundtruth.stats import GroundTruthRow, ground_truth_row, table1
from repro.groundtruth.validation import (
    HostnameChurnReport,
    OverlapComparison,
    compare_datasets,
    hostname_churn_report,
)

__all__ = [
    "DnsGroundTruthResult",
    "DnsGroundTruthStats",
    "build_dns_ground_truth",
    "HintVerdict",
    "HintVerificationReport",
    "VerifiedHint",
    "decode_hinted_addresses",
    "verify_hints",
    "GroundTruthFormatError",
    "export_ground_truth_csv",
    "import_ground_truth_csv",
    "GroundTruthRecord",
    "GroundTruthSet",
    "GroundTruthSource",
    "merge_ground_truth",
    "RttProximityConfig",
    "RttProximityResult",
    "RttProximityStats",
    "build_rtt_ground_truth",
    "GroundTruthRow",
    "ground_truth_row",
    "table1",
    "HostnameChurnReport",
    "OverlapComparison",
    "compare_datasets",
    "hostname_churn_report",
]
