"""Latency verification of DNS location hints (HLOC-style).

Scheitle et al.'s HLOC (TMA 2017, the paper's [27]) extracts location
hints from hostnames *and then checks them against delay measurements*: a
hint naming city C is refuted if some vantage point measures an RTT to
the address whose physical distance bound is smaller than that vantage
point's distance to C — the router provably cannot be in C.

This matters precisely because of the paper's §3.1 finding: addresses get
reassigned while their rDNS records keep the old hints (the Dallas→Miami
ntt.net example).  Verification catches such stale hints before they
poison a ground-truth dataset.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.atlas.measurements import BuiltinMeasurement
from repro.atlas.probes import AtlasProbe
from repro.dns.drop import DropEngine
from repro.dns.rdns import RdnsService
from repro.geo.gazetteer import City
from repro.net.ip import IPv4Address
from repro.topology.rtt import max_distance_km


class HintVerdict(enum.Enum):
    """Outcome of latency verification for one hinted address."""

    CONFIRMED = "confirmed"  # some measurement places it within the hint city
    REFUTED = "refuted"  # some measurement proves it cannot be there
    UNVERIFIABLE = "unverifiable"  # no measurement constrains the hint


@dataclass(frozen=True, slots=True)
class VerifiedHint:
    """One hinted address with its verification outcome."""

    address: IPv4Address
    hinted_city: City
    verdict: HintVerdict
    #: Tightest distance bound any probe established (km), if any.
    best_bound_km: float | None
    #: The probe providing the decisive evidence, if any.
    witness_probe: int | None


@dataclass(frozen=True, slots=True)
class HintVerificationReport:
    """Aggregate over a population of hinted addresses."""

    results: tuple[VerifiedHint, ...]

    def count(self, verdict: HintVerdict) -> int:
        """Number of results with the given verdict."""
        return sum(1 for result in self.results if result.verdict is verdict)

    @property
    def confirmed(self) -> int:
        return self.count(HintVerdict.CONFIRMED)

    @property
    def refuted(self) -> int:
        return self.count(HintVerdict.REFUTED)

    @property
    def unverifiable(self) -> int:
        return self.count(HintVerdict.UNVERIFIABLE)

    def confirmed_addresses(self) -> tuple[IPv4Address, ...]:
        """Addresses whose hints were confirmed."""
        return tuple(
            r.address for r in self.results if r.verdict is HintVerdict.CONFIRMED
        )

    def refuted_addresses(self) -> tuple[IPv4Address, ...]:
        """Addresses whose hints were refuted."""
        return tuple(
            r.address for r in self.results if r.verdict is HintVerdict.REFUTED
        )


def _min_rtts_per_address(
    measurements: Iterable[BuiltinMeasurement],
) -> dict[IPv4Address, dict[int, float]]:
    """address → {probe id → min RTT observed at any hop}."""
    best: dict[IPv4Address, dict[int, float]] = {}
    for measurement in measurements:
        for hop in measurement.hops:
            rtt = hop.min_rtt_ms()
            if rtt is None:
                continue
            for reply in hop.replies:
                per_probe = best.setdefault(reply.from_address, {})
                existing = per_probe.get(measurement.probe_id)
                if existing is None or rtt < existing:
                    per_probe[measurement.probe_id] = rtt
    return best


def verify_hints(
    hinted: Mapping[IPv4Address, City],
    measurements: Iterable[BuiltinMeasurement],
    probes: Sequence[AtlasProbe],
    *,
    confirm_radius_km: float = 50.0,
    refute_slack_km: float = 60.0,
    min_refuting_probes: int = 2,
) -> HintVerificationReport:
    """Verify each hinted address against delay evidence.

    * CONFIRMED: some probe's RTT bound puts the address within
      ``confirm_radius_km`` + bound of the hinted city — consistent.
      (Specifically: bound + confirm_radius ≥ distance(probe, city) AND
      the bound is tight enough to be meaningful, ≤ confirm radius.)
    * REFUTED: at least ``min_refuting_probes`` *distinct* probes each
      measure a bound smaller than their distance to the hinted city
      minus ``refute_slack_km`` — the address provably sits elsewhere.
      Requiring independent corroboration protects against the §3.2
      problem in the opposite direction: a single probe with a wrong
      self-reported location would otherwise mass-refute honest hints.
    * UNVERIFIABLE: no measurement constrains the address tightly enough
      either way (HLOC reports a large such fraction too).
    """
    if min_refuting_probes < 1:
        raise ValueError("min_refuting_probes must be at least 1")
    probe_by_id = {probe.probe_id: probe for probe in probes}
    rtts = _min_rtts_per_address(measurements)
    results = []
    for address in sorted(hinted):
        city = hinted[address]
        per_probe = rtts.get(address, {})
        verdict = HintVerdict.UNVERIFIABLE
        best_bound: float | None = None
        witness: int | None = None
        refuters: list[int] = []
        for probe_id, rtt in sorted(per_probe.items()):
            probe = probe_by_id.get(probe_id)
            if probe is None:
                continue
            bound = max_distance_km(rtt)
            if best_bound is None or bound < best_bound:
                best_bound = bound
            distance_to_city = probe.reported_location.distance_km(city.location)
            if bound + refute_slack_km < distance_to_city:
                refuters.append(probe_id)
                continue
            if bound <= confirm_radius_km and distance_to_city <= bound + confirm_radius_km:
                if verdict is not HintVerdict.CONFIRMED:
                    verdict = HintVerdict.CONFIRMED
                    witness = probe_id
        if len(refuters) >= min_refuting_probes:
            verdict = HintVerdict.REFUTED
            witness = refuters[0]
        results.append(
            VerifiedHint(
                address=address,
                hinted_city=city,
                verdict=verdict,
                best_bound_km=best_bound,
                witness_probe=witness,
            )
        )
    return HintVerificationReport(results=tuple(results))


def decode_hinted_addresses(
    addresses: Iterable[IPv4Address],
    rdns: RdnsService,
    engine: DropEngine,
) -> dict[IPv4Address, City]:
    """Convenience: the hint map ``verify_hints`` consumes."""
    hinted: dict[IPv4Address, City] = {}
    for address in addresses:
        hostname = rdns.lookup(address)
        if hostname is None:
            continue
        decoded = engine.decode(hostname)
        if decoded is not None:
            hinted[address] = decoded.city
    return hinted
