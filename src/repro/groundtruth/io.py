"""Ground-truth dataset serialization (IMPACT-style release).

The paper published its 16,586-address ground truth through the IMPACT
portal.  This module provides the equivalent release format for datasets
built with this library: a documented CSV with one row per interface —
address, latitude, longitude, country, construction method, and the
method-specific provenance (rDNS domain, or supporting probe ids) — plus
a loader that validates on the way in.
"""

from __future__ import annotations

import csv
import io

from repro.geo.coordinates import GeoPoint
from repro.groundtruth.record import (
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
)
from repro.net.ip import parse_address


class GroundTruthFormatError(ValueError):
    """Raised when a ground-truth CSV cannot be parsed."""


_HEADER = ("address", "latitude", "longitude", "country", "source", "domain", "probe_ids")


def export_ground_truth_csv(dataset: GroundTruthSet) -> str:
    """Serialize a ground-truth set (one row per address, sorted)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_HEADER)
    for record in dataset:
        writer.writerow(
            (
                str(record.address),
                f"{record.location.lat:.5f}",
                f"{record.location.lon:.5f}",
                record.country,
                record.source.value,
                record.domain or "",
                ";".join(str(pid) for pid in record.probe_ids),
            )
        )
    return buffer.getvalue()


def import_ground_truth_csv(text: str) -> GroundTruthSet:
    """Parse a ground-truth CSV, validating every field."""
    try:
        rows = list(csv.reader(io.StringIO(text)))
    except csv.Error as exc:
        raise GroundTruthFormatError(f"malformed CSV: {exc}") from exc
    if not rows:
        raise GroundTruthFormatError("empty CSV")
    header = tuple(rows[0])
    if header != _HEADER:
        raise GroundTruthFormatError(f"unexpected header: {header!r}")
    records = []
    for row_number, row in enumerate(rows[1:], start=2):
        if not row:
            continue
        if len(row) != len(_HEADER):
            raise GroundTruthFormatError(
                f"row {row_number}: expected {len(_HEADER)} fields, got {len(row)}"
            )
        address_s, lat_s, lon_s, country, source_s, domain, probes_s = row
        try:
            source = GroundTruthSource(source_s)
        except ValueError as exc:
            raise GroundTruthFormatError(f"row {row_number}: bad source {source_s!r}") from exc
        try:
            record = GroundTruthRecord(
                address=parse_address(address_s),
                location=GeoPoint(float(lat_s), float(lon_s)),
                country=country,
                source=source,
                domain=domain or None,
                probe_ids=tuple(int(p) for p in probes_s.split(";") if p),
            )
        except (ValueError, KeyError) as exc:
            raise GroundTruthFormatError(f"row {row_number}: {exc}") from exc
        records.append(record)
    try:
        return GroundTruthSet(records)
    except ValueError as exc:
        raise GroundTruthFormatError(str(exc)) from exc
