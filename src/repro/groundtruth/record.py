"""Ground-truth records: router interfaces with known city-level locations.

The paper's central data contribution is a set of 16,586 interface
addresses with city-level locations, built from two independent methods
(§2.3): DNS hostname decoding and RTT proximity to RIPE Atlas probes.
:class:`GroundTruthSet` is the container both methods produce and every
evaluation consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.geo.coordinates import GeoPoint
from repro.net.ip import IPv4Address


class GroundTruthSource(enum.Enum):
    """Which §2.3 method produced a record."""

    DNS = "dns-based"
    RTT = "rtt-proximity"


@dataclass(frozen=True, slots=True)
class GroundTruthRecord:
    """One ground-truth fact: this interface is at this location."""

    address: IPv4Address
    location: GeoPoint
    country: str
    source: GroundTruthSource
    #: DNS-based: the rDNS domain the location was decoded from.
    domain: str | None = None
    #: RTT-proximity: the probes that proved proximity.
    probe_ids: tuple[int, ...] = ()


class GroundTruthSet:
    """An immutable set of ground-truth records, keyed by address."""

    def __init__(self, records: Mapping[IPv4Address, GroundTruthRecord] | list[GroundTruthRecord]):
        if isinstance(records, Mapping):
            self._records = dict(records)
        else:
            self._records = {}
            for record in records:
                if record.address in self._records:
                    raise ValueError(f"duplicate ground-truth address: {record.address}")
                self._records[record.address] = record
        # Address-sorted record order, computed on first iteration: every
        # analysis stage walks the set (several times per study), and
        # re-sorting IPv4Address objects per walk is measurable.
        self._ordered: tuple[GroundTruthRecord, ...] | None = None

    def _in_order(self) -> tuple[GroundTruthRecord, ...]:
        ordered = self._ordered
        if ordered is None:
            ordered = self._ordered = tuple(
                self._records[address] for address in sorted(self._records)
            )
        return ordered

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, address: IPv4Address) -> bool:
        return address in self._records

    def __iter__(self) -> Iterator[GroundTruthRecord]:
        return iter(self._in_order())

    def get(self, address: IPv4Address) -> GroundTruthRecord | None:
        """The record for an address, or ``None``."""
        return self._records.get(address)

    def addresses(self) -> tuple[IPv4Address, ...]:
        """All ground-truth addresses, ascending."""
        return tuple(record.address for record in self._in_order())

    def by_source(self, source: GroundTruthSource) -> "GroundTruthSet":
        """The subset built by one construction method."""
        return GroundTruthSet(
            {a: r for a, r in self._records.items() if r.source is source}
        )

    def countries(self) -> set[str]:
        """Distinct ground-truth countries (Table 1's country column)."""
        return {record.country for record in self._records.values()}

    def unique_coordinates(self) -> set[tuple[float, float]]:
        """Distinct (lat, lon) pairs — Table 1's ``lat/lon`` column."""
        return {
            (record.location.lat, record.location.lon)
            for record in self._records.values()
        }


def merge_ground_truth(dns_set: GroundTruthSet, rtt_set: GroundTruthSet) -> GroundTruthSet:
    """Combine the two methods' sets, DNS taking precedence on overlap.

    The paper keeps the 109 addresses common to both sets "only as part of
    the DNS-based dataset" (§5.2.4); merge order reproduces that rule.
    """
    merged: dict[IPv4Address, GroundTruthRecord] = {}
    for record in rtt_set:
        merged[record.address] = record
    for record in dns_set:
        merged[record.address] = record
    return GroundTruthSet(merged)
