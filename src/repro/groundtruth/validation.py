"""Ground-truth correctness analyses (§3).

Two families of checks:

* **cross-dataset agreement** (§3.1/§3.2): where two independently-built
  datasets cover the same addresses, their locations should agree within
  the methods' combined tolerance.  The paper compares DNS-based vs
  RTT-proximity (105 of 109 overlap within 10 km), DNS-based vs Giotsas
  et al.'s 1 ms dataset (92.45% within 100 km), and RTT-proximity vs the
  1 ms dataset (96.8% within 40 km);
* **longitudinal hostname churn** (§3.1): how many DNS-based addresses
  kept/changed/lost their hostnames months later, and — for the changed
  ones — whether re-decoding still yields the same location.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.drop import DropEngine
from repro.dns.rdns import RdnsService
from repro.groundtruth.record import GroundTruthSet
from repro.net.ip import IPv4Address


@dataclass(frozen=True, slots=True)
class OverlapComparison:
    """Pairwise location agreement over the intersection of two datasets."""

    label_a: str
    label_b: str
    common: int
    distances_km: tuple[float, ...]

    def within(self, km: float) -> int:
        """Number of common addresses whose locations agree within ``km``."""
        return sum(1 for d in self.distances_km if d <= km)

    def fraction_within(self, km: float) -> float:
        """Fraction of common addresses agreeing within ``km``."""
        if self.common == 0:
            return 0.0
        return self.within(km) / self.common

    def max_distance(self) -> float:
        """The largest disagreement between the two datasets."""
        return max(self.distances_km, default=0.0)


def compare_datasets(
    label_a: str,
    dataset_a: GroundTruthSet,
    label_b: str,
    dataset_b: GroundTruthSet,
) -> OverlapComparison:
    """Pairwise distance between the two datasets' locations per common
    address."""
    common = sorted(set(dataset_a.addresses()) & set(dataset_b.addresses()))
    distances = tuple(
        dataset_a.get(address).location.distance_km(dataset_b.get(address).location)
        for address in common
    )
    return OverlapComparison(
        label_a=label_a, label_b=label_b, common=len(common), distances_km=distances
    )


@dataclass(frozen=True, slots=True)
class HostnameChurnReport:
    """§3.1's longitudinal study of the DNS-based addresses.

    ``same_location``/``different_location``/``no_rule_match`` break down
    only the *changed-hostname* addresses, by re-decoding the new names
    with the ground-truth rules.
    """

    total: int
    same_hostname: int
    changed_hostname: int
    no_rdns: int
    same_location: int
    different_location: int
    no_rule_match: int

    @property
    def moved_fraction_of_all(self) -> float:
        """The paper's headline: 7.4% of all DNS-based addresses moved."""
        if self.total == 0:
            return 0.0
        return self.different_location / self.total


def hostname_churn_report(
    dataset: GroundTruthSet,
    original: RdnsService,
    later: RdnsService,
    engine: DropEngine,
) -> HostnameChurnReport:
    """Compare rDNS snapshots over the DNS-based ground-truth addresses."""
    total = same = changed = gone = 0
    same_location = different_location = no_rule = 0
    for record in dataset:
        address: IPv4Address = record.address
        old_name = original.lookup(address)
        if old_name is None:
            continue  # not part of the original DNS-based universe
        total += 1
        new_name = later.lookup(address)
        if new_name is None:
            gone += 1
            continue
        if new_name == old_name:
            same += 1
            continue
        changed += 1
        decoded = engine.decode(new_name)
        if decoded is None:
            no_rule += 1
        elif decoded.city.location.distance_km(record.location) <= 40.0:
            same_location += 1
        else:
            different_location += 1
    return HostnameChurnReport(
        total=total,
        same_hostname=same,
        changed_hostname=changed,
        no_rdns=gone,
        same_location=same_location,
        different_location=different_location,
        no_rule_match=no_rule,
    )
