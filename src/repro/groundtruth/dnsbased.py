"""DNS-based ground truth (§2.3.1).

Pipeline, exactly as the paper ran it: take the Ark-topo-router
interface addresses, reverse-resolve them, keep hostnames in the seven
domains with operator-validated DRoP rules, decode the location hints,
and record each decoded address at its hinted city.  Alongside the set
itself, :class:`DnsGroundTruthStats` reports the funnel the paper
reports: how many addresses had hostnames at all (905 K of 1,638 K), how
many fell in ground-truth domains (13.5 K), and how many decoded
(11,857), with a per-domain breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.dns.drop import DropEngine
from repro.dns.rdns import RdnsService
from repro.groundtruth.record import (
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
)
from repro.net.ip import IPv4Address


@dataclass(frozen=True, slots=True)
class DnsGroundTruthStats:
    """The extraction funnel (§2.3.1's counts)."""

    input_addresses: int
    with_hostnames: int
    in_ground_truth_domains: int
    geolocated: int
    per_domain: Mapping[str, int]

    @property
    def hostname_rate(self) -> float:
        if self.input_addresses == 0:
            return 0.0
        return self.with_hostnames / self.input_addresses


@dataclass(frozen=True, slots=True)
class DnsGroundTruthResult:
    dataset: GroundTruthSet
    stats: DnsGroundTruthStats


def build_dns_ground_truth(
    addresses: Iterable[IPv4Address],
    rdns: RdnsService,
    engine: DropEngine,
) -> DnsGroundTruthResult:
    """Extract the DNS-based ground truth from an address population.

    ``engine`` should carry only operator-validated rules
    (:meth:`DropEngine.with_ground_truth_rules`) — that restriction is
    what makes the result trustworthy enough to call ground truth.
    """
    records: dict[IPv4Address, GroundTruthRecord] = {}
    per_domain: dict[str, int] = {}
    input_count = 0
    with_hostnames = 0
    in_domains = 0
    for address in sorted(set(addresses)):
        input_count += 1
        hostname = rdns.lookup(address)
        if hostname is None:
            continue
        with_hostnames += 1
        rule = engine.rule_for(hostname)
        if rule is None:
            continue
        in_domains += 1
        decoded = engine.decode(hostname)
        if decoded is None:
            continue  # in a GT domain but no decodable hint
        records[address] = GroundTruthRecord(
            address=address,
            location=decoded.city.location,
            country=decoded.city.country,
            source=GroundTruthSource.DNS,
            domain=decoded.domain,
        )
        per_domain[decoded.domain] = per_domain.get(decoded.domain, 0) + 1
    return DnsGroundTruthResult(
        dataset=GroundTruthSet(records),
        stats=DnsGroundTruthStats(
            input_addresses=input_count,
            with_hostnames=with_hostnames,
            in_ground_truth_domains=in_domains,
            geolocated=len(records),
            per_domain=dict(sorted(per_domain.items())),
        ),
    )
