"""RTT-proximity ground truth (§2.3.2) with probe disqualification (§3.2).

The method: any traceroute hop answering within ``threshold_ms`` of a
probe is physically within ``threshold_ms × 100 km`` of that probe
(0.5 ms ⇒ 50 km), so the hop can be assigned the probe's location.  The
catch: probe locations are crowdsourced.  Two filters from §3.2 remove
probes that are probably lying:

1. **default-coordinate filter** — probes sitting within a few km of
   their country's geographic-centre default coordinates were likely
   never given a real location;
2. **RTT-nearby consistency filter** — two probes both within 50 km of
   the same router must be within 100 km of each other; probes violating
   that across groups are disqualified (the paper's Mozambique example:
   two "nearby" probes 867 km apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.atlas.measurements import BuiltinMeasurement
from repro.atlas.probes import AtlasProbe
from repro.geo.coordinates import GeoPoint
from repro.geo.countries import COUNTRIES, UnknownCountryError
from repro.groundtruth.record import (
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
)
from repro.net.ip import IPv4Address
from repro.topology.rtt import max_distance_km


@dataclass(frozen=True, slots=True)
class RttProximityConfig:
    """Extraction and filtering parameters (paper defaults)."""

    threshold_ms: float = 0.5
    centroid_disqualify_km: float = 5.0
    min_nearby_group: int = 2

    def __post_init__(self) -> None:
        if self.threshold_ms <= 0:
            raise ValueError(f"threshold must be positive: {self.threshold_ms!r}")
        if self.centroid_disqualify_km < 0:
            raise ValueError("centroid radius must be non-negative")

    @property
    def proximity_km(self) -> float:
        """Max probe→hop distance implied by the RTT threshold (50 km)."""
        return max_distance_km(self.threshold_ms)

    @property
    def nearby_pair_km(self) -> float:
        """Max distance between two probes near the same router (100 km)."""
        return 2.0 * self.proximity_km


@dataclass(frozen=True, slots=True)
class RttProximityStats:
    """Everything §2.3.2/§3.2 reports about the extraction."""

    candidate_addresses: int
    candidate_probes: int
    centroid_probes_removed: int
    centroid_addresses_removed: int
    nearby_groups: int
    inconsistent_groups: int
    nearby_probes_total: int
    nearby_probes_disqualified: int
    nearby_addresses_removed: int
    final_addresses: int


@dataclass(frozen=True, slots=True)
class RttProximityResult:
    dataset: GroundTruthSet
    stats: RttProximityStats
    #: address → probes that proved proximity (post-filtering)
    supporting_probes: Mapping[IPv4Address, tuple[int, ...]] = field(default_factory=dict)


def _is_default_coordinate(probe: AtlasProbe, radius_km: float) -> bool:
    """True when a probe's reported spot is its country's centroid."""
    try:
        country = COUNTRIES.get(probe.reported_country)
    except UnknownCountryError:
        return False
    centroid = GeoPoint(country.centroid_lat, country.centroid_lon)
    return probe.reported_location.distance_km(centroid) <= radius_km


def _disqualify_inconsistent_probes(
    groups: Mapping[IPv4Address, list[AtlasProbe]],
    nearby_pair_km: float,
) -> tuple[set[int], int]:
    """Greedy removal of probes causing RTT-nearby inconsistencies.

    Counts inconsistent pairs per probe over all groups and repeatedly
    disqualifies the worst offender — one bad probe typically poisons
    several groups (the paper's single Italian probe caused 7 of 12
    disagreements).
    Returns (disqualified probe ids, number of initially inconsistent groups).
    """
    # Distances between probe *reported* locations never change, so the
    # inconsistent pairs can be enumerated once; disqualifying a probe
    # only ever removes pairs (it cannot create new ones).  Pairwise
    # distances are cached across groups — the same two probes are often
    # RTT-nearby to many routers.
    distance_cache: dict[tuple[int, int], float] = {}

    def pair_distance(a: AtlasProbe, b: AtlasProbe) -> float:
        key = (min(a.probe_id, b.probe_id), max(a.probe_id, b.probe_id))
        cached = distance_cache.get(key)
        if cached is None:
            cached = a.reported_location.distance_km(b.reported_location)
            distance_cache[key] = cached
        return cached

    pairs: list[tuple[int, int]] = []
    initially_inconsistent_groups = 0
    for probes in groups.values():
        group_bad = False
        for i, a in enumerate(probes):
            for b in probes[i + 1 :]:
                if pair_distance(a, b) > nearby_pair_km:
                    pairs.append((a.probe_id, b.probe_id))
                    group_bad = True
        initially_inconsistent_groups += group_bad

    disqualified: set[int] = set()
    while pairs:
        counts: dict[int, int] = {}
        for a, b in pairs:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        worst = max(sorted(counts), key=lambda pid: counts[pid])
        disqualified.add(worst)
        pairs = [pair for pair in pairs if worst not in pair]
    return disqualified, initially_inconsistent_groups


def build_rtt_ground_truth(
    measurements: Iterable[BuiltinMeasurement],
    probes: Sequence[AtlasProbe],
    config: RttProximityConfig | None = None,
) -> RttProximityResult:
    """Extract the RTT-proximity ground truth from built-in measurements."""
    config = config if config is not None else RttProximityConfig()
    probe_by_id = {probe.probe_id: probe for probe in probes}

    # 1. Collect (address → nearby probes) under the RTT threshold.
    support: dict[IPv4Address, dict[int, float]] = {}
    for measurement in measurements:
        probe = probe_by_id.get(measurement.probe_id)
        if probe is None:
            continue  # measurement from an unknown probe: ignore
        for hop in measurement.hops:
            rtt = hop.min_rtt_ms()
            if rtt is None or rtt > config.threshold_ms:
                continue
            for reply in hop.replies:
                per_probe = support.setdefault(reply.from_address, {})
                existing = per_probe.get(probe.probe_id)
                if existing is None or rtt < existing:
                    per_probe[probe.probe_id] = rtt
    candidate_probe_ids = {pid for per_probe in support.values() for pid in per_probe}
    candidate_addresses = len(support)

    # 2. Default-coordinate filter.
    centroid_probes = {
        pid
        for pid in candidate_probe_ids
        if _is_default_coordinate(probe_by_id[pid], config.centroid_disqualify_km)
    }
    removed_by_centroid = set()
    for address, per_probe in support.items():
        remaining = {pid for pid in per_probe if pid not in centroid_probes}
        if not remaining:
            removed_by_centroid.add(address)
    support2 = {
        address: {pid: rtt for pid, rtt in per_probe.items() if pid not in centroid_probes}
        for address, per_probe in support.items()
        if address not in removed_by_centroid
    }

    # 3. RTT-nearby consistency filter.
    groups = {
        address: [probe_by_id[pid] for pid in sorted(per_probe)]
        for address, per_probe in support2.items()
        if len(per_probe) >= config.min_nearby_group
    }
    nearby_probe_ids = {
        probe.probe_id for probes_list in groups.values() for probe in probes_list
    }
    disqualified, inconsistent_groups = _disqualify_inconsistent_probes(
        groups, config.nearby_pair_km
    )
    removed_by_nearby = set()
    final_support: dict[IPv4Address, dict[int, float]] = {}
    for address, per_probe in support2.items():
        remaining = {
            pid: rtt for pid, rtt in per_probe.items() if pid not in disqualified
        }
        if not remaining:
            removed_by_nearby.add(address)
            continue
        final_support[address] = remaining

    # 4. Assign each surviving address its closest probe's location.
    records: dict[IPv4Address, GroundTruthRecord] = {}
    supporting: dict[IPv4Address, tuple[int, ...]] = {}
    for address, per_probe in final_support.items():
        best_pid = min(per_probe, key=lambda pid: (per_probe[pid], pid))
        probe = probe_by_id[best_pid]
        records[address] = GroundTruthRecord(
            address=address,
            location=probe.reported_location,
            country=probe.reported_country,
            source=GroundTruthSource.RTT,
            probe_ids=tuple(sorted(per_probe)),
        )
        supporting[address] = tuple(sorted(per_probe))

    stats = RttProximityStats(
        candidate_addresses=candidate_addresses,
        candidate_probes=len(candidate_probe_ids),
        centroid_probes_removed=len(centroid_probes),
        centroid_addresses_removed=len(removed_by_centroid),
        nearby_groups=len(groups),
        inconsistent_groups=inconsistent_groups,
        nearby_probes_total=len(nearby_probe_ids),
        nearby_probes_disqualified=len(disqualified),
        nearby_addresses_removed=len(removed_by_nearby),
        final_addresses=len(records),
    )
    return RttProximityResult(
        dataset=GroundTruthSet(records),
        stats=stats,
        supporting_probes=supporting,
    )
