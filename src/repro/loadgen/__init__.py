"""Deterministic load generation and open-loop replay for the serve stack.

Two halves, composable and separately testable:

* :mod:`repro.loadgen.workload` — a seeded Zipf popularity model over a
  pool of addresses (plus a configurable miss fraction), producing the
  same request stream for the same seed and config, forever;
* :mod:`repro.loadgen.replay` — an open-loop, coordinated-omission-safe
  replay driver that fires that stream at a live
  :class:`~repro.serve.http.GeoServer` at a target offered rate and
  reports what actually happened (achieved rps, latency quantiles,
  errors, and the server's own ``/statusz`` view of the same window).
"""

from repro.loadgen.replay import ReplayConfig, ReplayReport, replay
from repro.loadgen.workload import MISS_PREFIX, WorkloadConfig, ZipfWorkload, covered_pool

__all__ = [
    "MISS_PREFIX",
    "ReplayConfig",
    "ReplayReport",
    "WorkloadConfig",
    "ZipfWorkload",
    "covered_pool",
    "replay",
]
