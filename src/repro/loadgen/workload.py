"""Seeded Zipf workloads over a scenario's address pool.

Serving traffic is never uniform: a few prefixes dominate (resolvers,
popular eyeball networks), most are cold.  The replay harness therefore
draws addresses from a Zipf popularity model — rank *r* is requested
with probability proportional to ``(r + 1) ** -s`` — over a pool taken
from the scenario (interface addresses, or covered interval starts of
the compiled indexes).  Two design points matter for benchmarking:

* **Determinism.** Everything is driven by one ``random.Random(seed)``:
  the popularity permutation *and* the draw stream.  The same pool,
  seed, and config produce the identical request sequence — replay runs
  are reproducible and regression-comparable.
* **Popularity is decoupled from address order.** The pool is shuffled
  before ranks are assigned, so "hot" addresses are spread across the
  address space instead of clustering at the numerically-lowest
  prefixes (which would make every cache look artificially good).

A configurable *miss fraction* interleaves addresses from
``240.0.0.0/8`` — reserved space outside every RIR parent block, so no
generated vendor snapshot ever covers it.  Those lookups exercise the
no-coverage path (all vendors answer ``null``; the server still returns
200) without ever colliding with real pool traffic.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator

from repro.net.ip import IPv4Address, parse_address

__all__ = ["MISS_PREFIX", "WorkloadConfig", "ZipfWorkload", "covered_pool"]

#: Miss traffic is drawn from this reserved /8 — class E space that no
#: RIR parent block contains, hence uncovered by every generated vendor.
MISS_PREFIX = "240.0.0.0/8"
_MISS_BASE = int(IPv4Address("240.0.0.0"))
_MISS_SPAN = 1 << 24


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Shape of a replay workload (the popularity model, not the rate)."""

    seed: int = 2016
    #: Zipf exponent: 0 = uniform, ~1 = classic web-trace skew.
    zipf_s: float = 1.1
    #: Fraction of requests drawn from :data:`MISS_PREFIX` instead of
    #: the pool — guaranteed-uncovered lookups.
    miss_fraction: float = 0.0
    #: Truncate the (shuffled) pool to this many addresses, if set.
    pool_limit: int | None = None

    def __post_init__(self) -> None:
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0: {self.zipf_s!r}")
        if not 0.0 <= self.miss_fraction <= 1.0:
            raise ValueError(
                f"miss_fraction must be in [0, 1]: {self.miss_fraction!r}"
            )
        if self.pool_limit is not None and self.pool_limit <= 0:
            raise ValueError(f"pool_limit must be positive: {self.pool_limit!r}")


class ZipfWorkload:
    """An infinite, deterministic request stream over an address pool."""

    def __init__(
        self,
        pool: Iterable[IPv4Address | str | int],
        config: WorkloadConfig | None = None,
    ):
        self.config = config = config if config is not None else WorkloadConfig()
        addresses = [str(parse_address(address)) for address in pool]
        if not addresses:
            raise ValueError("workload pool must not be empty")
        rng = random.Random(config.seed)
        rng.shuffle(addresses)
        if config.pool_limit is not None:
            addresses = addresses[: config.pool_limit]
        self.pool: tuple[str, ...] = tuple(addresses)
        # Cumulative (r+1)^-s mass: one draw is rng.random() + a bisect.
        cumulative: list[float] = []
        total = 0.0
        for rank in range(len(addresses)):
            total += (rank + 1) ** -config.zipf_s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total
        # The shuffle and the draw stream share one seeded generator, so
        # the whole request sequence is a pure function of (pool, config).
        self._rng = rng

    def addresses(self) -> Iterator[str]:
        """The infinite request stream (dotted-quad strings)."""
        rng = self._rng
        cumulative = self._cumulative
        total = self._total
        last = len(self.pool) - 1
        miss = self.config.miss_fraction
        while True:
            if miss > 0.0 and rng.random() < miss:
                # Host part avoids .0.0.0 and the /8 broadcast, purely
                # for tidiness — anything in the /8 is equally uncovered.
                yield str(IPv4Address(_MISS_BASE + rng.randrange(1, _MISS_SPAN - 1)))
                continue
            index = bisect_right(cumulative, rng.random() * total)
            yield self.pool[index if index <= last else last]

    def take(self, count: int) -> list[str]:
        """The next ``count`` requests (advances the stream)."""
        if count < 0:
            raise ValueError(f"count must be >= 0: {count!r}")
        return list(islice(self.addresses(), count))

    def expected_share(self, rank: int) -> float:
        """The model's probability mass for popularity rank ``rank`` —
        what the determinism tests compare empirical frequencies to."""
        return (rank + 1) ** -self.config.zipf_s / self._total * (
            1.0 - self.config.miss_fraction
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ZipfWorkload({len(self.pool)} addresses, s={self.config.zipf_s},"
            f" miss={self.config.miss_fraction}, seed={self.config.seed})"
        )


def covered_pool(indexes, per_vendor: int = 4096) -> list[int]:
    """A workload address pool from compiled indexes: covered interval
    starts.

    A spread of starts from every vendor's index whose interval actually
    has an answer, so Zipf traffic exercises real coverage (misses are a
    separate, explicit workload knob).  Shared by the replay and
    enrichment CLIs so both harnesses offer the same traffic shape.
    """
    addresses: set[int] = set()
    for index in indexes.values():
        starts = [start for start, _end, answer in index.intervals() if answer >= 0]
        step = max(1, len(starts) // per_vendor)
        addresses.update(starts[::step])
    return sorted(addresses)
