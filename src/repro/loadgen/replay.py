"""Open-loop HTTP replay with coordinated-omission-safe latency.

The driver models an *open* system: request *i* is due at
``epoch + i / rate`` whether or not earlier responses have returned.
This is the property closed-loop benchmarks (one request per connection
at a time, next sent when the previous completes) silently lose — a
server stall makes a closed client *stop offering load*, so the stall
barely appears in its numbers.  That failure mode is coordinated
omission (Tene's term), and the driver avoids it twice over:

* **Scheduling** is open-loop: the schedule is fixed up front from the
  offered rate; a slow response never delays the next request's due
  time, it only makes the sender late.
* **Accounting** measures every latency from the request's *scheduled*
  time, not its actual send time.  A request sent late because the
  worker was stuck behind a stalled response inherits the queueing
  delay in its recorded latency — exactly what a real open client
  would have experienced.  Late requests are sent immediately, never
  skipped.

Mechanics: ``clients`` worker threads each own one persistent
``http.client`` keep-alive connection; worker *k* sends requests
``i ≡ k (mod clients)``, sleeping until each due time.  All recorded
latencies are kept (a few thousand floats) so the quantiles are exact,
not estimates.  After the run the driver scrapes ``/statusz`` so every
report carries the server's own rolling-window view (rps, error rate,
plane/cache hit ratios) next to the client-side measurements — the two
must tell the same story, and the CI replay job asserts they do.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NOOP_TRACER, NoopTracer, Tracer
from urllib.parse import urlsplit

__all__ = ["ReplayConfig", "ReplayReport", "replay"]

#: Lead time between computing the schedule epoch and the first due
#: request — covers worker-thread startup and connection establishment.
_STARTUP_S = 0.25


@dataclass(frozen=True, slots=True)
class ReplayConfig:
    """One replay run: offered rate, duration, concurrency."""

    rate: float = 500.0
    duration_s: float = 5.0
    clients: int = 4
    timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive: {self.duration_s!r}")
        if self.clients <= 0:
            raise ValueError(f"clients must be positive: {self.clients!r}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {self.timeout_s!r}")

    @property
    def total_requests(self) -> int:
        return max(1, round(self.rate * self.duration_s))


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """What one replay run measured, client side and server side."""

    offered_rps: float
    achieved_rps: float
    requests: int
    completed: int
    errors: int
    error_rate: float
    duration_s: float
    clients: int
    #: Coordinated-omission-safe quantiles: measured from each request's
    #: *scheduled* time (keys p50/p90/p99/p999/max/mean).
    latency_ms: dict[str, float]
    #: On-wire quantiles: measured from the actual send — the server's
    #: view, useful to separate service time from scheduling lag.
    service_ms: dict[str, float]
    #: The server's ``/statusz`` rolling-window rates scraped right
    #: after the run (``None`` when scraping was disabled or failed).
    server: dict[str, Any] | None

    def to_dict(self) -> dict[str, Any]:
        return {
            "offered_rps": self.offered_rps,
            "achieved_rps": round(self.achieved_rps, 3),
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "duration_s": self.duration_s,
            "clients": self.clients,
            "latency_ms": self.latency_ms,
            "service_ms": self.service_ms,
            "server": self.server,
        }

    def render(self) -> str:
        """A compact human-readable summary (the CLI's default output)."""
        lat = self.latency_ms
        lines = [
            f"replay: offered {self.offered_rps:g} rps × {self.duration_s:g}s"
            f" over {self.clients} clients → achieved {self.achieved_rps:.1f} rps",
            f"  requests {self.requests}  completed {self.completed}"
            f"  errors {self.errors} (rate {self.error_rate:.4f})",
            f"  latency ms (from schedule): p50 {lat['p50']:.3f}"
            f"  p90 {lat['p90']:.3f}  p99 {lat['p99']:.3f}"
            f"  p999 {lat['p999']:.3f}  max {lat['max']:.3f}",
            f"  service ms (on the wire):   p50 {self.service_ms['p50']:.3f}"
            f"  p99 {self.service_ms['p99']:.3f}",
        ]
        if self.server is not None:
            rates = self.server.get("rates", {}).get("10s", {})
            lines.append(
                f"  server 10s window: rps {rates.get('rps', 0.0):.1f}"
                f"  error_rate {rates.get('error_rate', 0.0):.4f}"
                f"  plane_hit {rates.get('plane_hit_ratio', 0.0):.3f}"
                f"  cache_hit {rates.get('cache_hit_ratio', 0.0):.3f}"
            )
        return "\n".join(lines)


def _quantiles(values: list[float]) -> dict[str, float]:
    """Exact quantiles over all recorded values, in milliseconds."""
    if not values:
        return {k: 0.0 for k in ("p50", "p90", "p99", "p999", "max", "mean")}
    ordered = sorted(values)
    last = len(ordered) - 1

    def at(q: float) -> float:
        return ordered[min(last, int(q * len(ordered)))] * 1000.0

    return {
        "p50": round(at(0.50), 3),
        "p90": round(at(0.90), 3),
        "p99": round(at(0.99), 3),
        "p999": round(at(0.999), 3),
        "max": round(ordered[-1] * 1000.0, 3),
        "mean": round(sum(ordered) / len(ordered) * 1000.0, 3),
    }


class _Worker:
    """One keep-alive connection sending its residue class of requests."""

    __slots__ = ("host", "port", "timeout_s", "latencies", "services", "errors", "last_done")

    def __init__(self, host: str, port: int, timeout_s: float):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.latencies: list[float] = []
        self.services: list[float] = []
        self.errors = 0
        self.last_done = 0.0

    def run(
        self, schedule: list[tuple[float, str]], epoch: float
    ) -> None:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        perf = time.perf_counter
        try:
            for due, address in schedule:
                due_at = epoch + due
                now = perf()
                if due_at > now:
                    time.sleep(due_at - now)
                sent = perf()
                try:
                    connection.request("GET", f"/lookup?ip={address}")
                    response = connection.getresponse()
                    response.read()
                    done = perf()
                    if response.status != 200:
                        self.errors += 1
                except (OSError, http.client.HTTPException):
                    # The slot still happened: a failed request keeps its
                    # schedule-relative latency, and the connection is
                    # rebuilt so one refusal can't sink the whole worker.
                    done = perf()
                    self.errors += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                self.latencies.append(done - due_at)
                self.services.append(done - sent)
                self.last_done = done
        finally:
            connection.close()


def _scrape_statusz(host: str, port: int, timeout_s: float) -> dict[str, Any] | None:
    try:
        connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
        try:
            connection.request("GET", "/statusz")
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
    except (OSError, http.client.HTTPException, ValueError):
        return None
    windows = payload.get("windows", {})
    return {
        "rates": windows.get("rates", {}),
        "cache": payload.get("cache"),
        "plane": payload.get("plane"),
        "generation": payload.get("generation", {}).get("generation"),
    }


def replay(
    url: str,
    addresses: Iterable[str] | Iterator[str],
    config: ReplayConfig | None = None,
    *,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | NoopTracer | None = None,
    scrape: bool = True,
) -> ReplayReport:
    """Replay ``addresses`` against a live server at the offered rate.

    ``addresses`` is typically :meth:`ZipfWorkload.addresses`; a finite
    iterable is cycled if shorter than the run.  The driver consumes
    exactly ``config.total_requests`` addresses up front, so the request
    *content* is deterministic even though timing is not.
    """
    config = config if config is not None else ReplayConfig()
    tracer = tracer if tracer is not None else NOOP_TRACER
    split = urlsplit(url if "//" in url else f"http://{url}")
    if split.hostname is None or split.port is None:
        raise ValueError(f"replay needs an explicit host:port URL: {url!r}")
    host, port = split.hostname, split.port

    total = config.total_requests
    stream = list(islice(iter(addresses), total))
    if not stream:
        raise ValueError("replay needs a non-empty address stream")
    while len(stream) < total:  # cycle a short finite pool
        stream.extend(stream[: total - len(stream)])

    # Fixed open-loop schedule: request i is due at epoch + i/rate,
    # worker k owns residue class i ≡ k (mod clients).
    workers = [_Worker(host, port, config.timeout_s) for _ in range(config.clients)]
    schedules: list[list[tuple[float, str]]] = [[] for _ in range(config.clients)]
    for i, address in enumerate(stream):
        schedules[i % config.clients].append((i / config.rate, address))

    with tracer.span(
        "loadgen.replay",
        rate=config.rate,
        duration_s=config.duration_s,
        clients=config.clients,
        requests=total,
    ) as span:
        epoch = time.perf_counter() + _STARTUP_S
        threads = [
            threading.Thread(
                target=worker.run, args=(schedule, epoch), daemon=True
            )
            for worker, schedule in zip(workers, schedules)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        span.count(total)

    latencies = [value for worker in workers for value in worker.latencies]
    services = [value for worker in workers for value in worker.services]
    errors = sum(worker.errors for worker in workers)
    completed = len(latencies) - errors
    end = max((worker.last_done for worker in workers), default=epoch)
    wall = max(end - epoch, 1e-9)
    achieved = len(latencies) / wall

    if metrics is not None:
        metrics.inc("loadgen.requests", len(latencies))
        metrics.inc("loadgen.errors", errors)
        for value in latencies:
            metrics.observe("loadgen.latency_ms", value * 1000.0)

    server = _scrape_statusz(host, port, config.timeout_s) if scrape else None
    return ReplayReport(
        offered_rps=config.rate,
        achieved_rps=achieved,
        requests=total,
        completed=completed,
        errors=errors,
        error_rate=errors / len(latencies) if latencies else 0.0,
        duration_s=config.duration_s,
        clients=config.clients,
        latency_ms=_quantiles(latencies),
        service_ms=_quantiles(services),
        server=server,
    )
