"""repro — router geolocation evaluation in public and commercial databases.

A full reproduction of Gharaibeh et al., *A Look at Router Geolocation in
Public and Commercial Databases* (IMC 2017), including the measurement
substrates (synthetic Internet topology, Ark-style traceroutes, RIPE-Atlas-
style probes, rDNS with DRoP decoding, RIR registry, and generative
geolocation-database snapshots) and the paper's evaluation framework
(coverage, consistency, ground-truth accuracy, regional breakdowns, and
recommendations).

Quick start::

    from repro import build_scenario, RouterGeolocationStudy

    scenario = build_scenario(seed=2016, scale=0.1)
    study = RouterGeolocationStudy.from_scenario(scenario)
    result = study.run()
    print(result.render_summary())
"""

__version__ = "1.0.0"

__all__ = [
    "build_scenario",
    "ScenarioConfig",
    "RouterGeolocationStudy",
]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # still exposing the primary public API at the package root.
    if name == "build_scenario":
        from repro.scenario.build import build_scenario

        return build_scenario
    if name == "ScenarioConfig":
        from repro.scenario.config import ScenarioConfig

        return ScenarioConfig
    if name == "RouterGeolocationStudy":
        from repro.core.pipeline import RouterGeolocationStudy

        return RouterGeolocationStudy
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
