"""Autonomous System model.

The paper reports that transit ASes announce 74.5% of the RTT-proximity
ground truth and 99.9% of the DNS-based ground truth (§2.3.3, via CAIDA AS
rank).  The synthetic topology therefore distinguishes AS roles: a small
clique of international transit providers (whose routers carry hostname
location hints — the DRoP domains are all transit networks), regional
transit ASes, stub/eyeball ASes hosting Atlas-like probes, and content
ASes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ASRole(enum.Enum):
    """Coarse business role of an AS, CAIDA-AS-rank style."""

    TIER1 = "tier1"  # international transit clique
    TRANSIT = "transit"  # regional transit provider
    STUB = "stub"  # eyeball/enterprise edge network
    CONTENT = "content"  # hosting/content network

    @property
    def is_transit(self) -> bool:
        return self in (ASRole.TIER1, ASRole.TRANSIT)


@dataclass(frozen=True, slots=True)
class AutonomousSystem:
    """A synthetic AS.

    ``home_country`` is where the network's infrastructure footprint is
    centred; ``registered_country`` is the organization's legal seat as it
    appears in RIR records.  The two differ for multinationals — exactly
    the mismatch that produces the paper's registry-biased geolocation
    errors (non-US ARIN addresses pulled to the US, §5.2.3).
    """

    asn: int
    name: str
    role: ASRole
    home_country: str
    registered_country: str
    domain: str | None = None  # rDNS domain, if the AS names its routers
    footprint_countries: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.asn <= 0 or self.asn >= 2**32:
            raise ValueError(f"invalid ASN: {self.asn!r}")

    @property
    def is_transit(self) -> bool:
        return self.role.is_transit

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"AS{self.asn} ({self.name})"
