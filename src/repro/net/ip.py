"""IPv4 addressing helpers.

The study is entirely IPv4 (CAIDA Ark probes routed /24 IPv4 prefixes).
We build on :mod:`ipaddress` from the standard library and add the handful
of operations the substrates and analyses need: /24 block keys (the paper's
"block-level" granularity unit, §5.2.3), prefix pool arithmetic for the RIR
delegation registry, and deterministic address enumeration.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator

IPv4Address = ipaddress.IPv4Address
IPv4Network = ipaddress.IPv4Network


class AddressPoolExhaustedError(RuntimeError):
    """Raised when a prefix pool cannot satisfy an allocation request."""


def parse_address(text: str | int | IPv4Address) -> IPv4Address:
    """Parse an IPv4 address from a string, integer, or address object.

    Every malformed input — out-of-range integers, IPv6 text, arbitrary
    strings, wrong types — raises one uniform ``ValueError`` whose message
    starts with ``"not an IPv4 address"``, so callers (the database lookup
    path, the HTTP serving layer) can catch bad input without knowing the
    zoo of :mod:`ipaddress` exception types (``AddressValueError``,
    ``OverflowError``, ``TypeError``).
    """
    if isinstance(text, IPv4Address):
        return text
    try:
        return ipaddress.IPv4Address(text)
    except (ValueError, OverflowError, TypeError) as exc:
        raise ValueError(f"not an IPv4 address: {text!r}") from exc


def parse_network(text: str | IPv4Network, *, strict: bool = True) -> IPv4Network:
    """Parse an IPv4 network in CIDR notation."""
    if isinstance(text, IPv4Network):
        return text
    return ipaddress.IPv4Network(text, strict=strict)


def block_of(address: str | int | IPv4Address, prefix_len: int = 24) -> IPv4Network:
    """The enclosing ``/prefix_len`` block of an address.

    The paper's case study (§5.2.3) distinguishes records assigned at
    "/24 block or larger" granularity; this is the canonical block key.
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"invalid prefix length: {prefix_len!r}")
    addr = parse_address(address)
    return ipaddress.ip_network((int(addr) >> (32 - prefix_len) << (32 - prefix_len), prefix_len))


def hosts_in(network: str | IPv4Network) -> Iterator[IPv4Address]:
    """Usable host addresses of a network, in ascending order.

    For prefixes of length 31/32 every address is yielded (point-to-point
    router links routinely use /31s, and single interfaces are /32s).
    """
    net = parse_network(network)
    if net.prefixlen >= 31:
        yield from (ipaddress.IPv4Address(int(net.network_address) + i) for i in range(net.num_addresses))
    else:
        yield from net.hosts()


def nth_address(network: str | IPv4Network, index: int) -> IPv4Address:
    """The ``index``-th address of a network (0-based, network address first)."""
    net = parse_network(network)
    if not 0 <= index < net.num_addresses:
        raise IndexError(f"index {index} outside {net}")
    return ipaddress.IPv4Address(int(net.network_address) + index)


class PrefixPool:
    """Sequential allocator carving sub-prefixes out of a parent prefix.

    Used by the RIR delegation registry: each RIR owns a set of top-level
    blocks and hands out allocations to (synthetic) organizations in
    address order, the way early sequential delegations worked.  Allocation
    is deterministic: the same request sequence always yields the same
    prefixes, which keeps scenario builds reproducible.
    """

    def __init__(self, parents: list[IPv4Network] | tuple[IPv4Network, ...]):
        if not parents:
            raise ValueError("a prefix pool needs at least one parent prefix")
        self._parents = tuple(sorted((parse_network(p) for p in parents), key=lambda n: int(n.network_address)))
        for earlier, later in zip(self._parents, self._parents[1:]):
            if earlier.overlaps(later):
                raise ValueError(f"overlapping parent prefixes: {earlier} and {later}")
        # Next free address (as int) within each parent.
        self._cursors = [int(p.network_address) for p in self._parents]

    @property
    def parents(self) -> tuple[IPv4Network, ...]:
        return self._parents

    def allocate(self, prefix_len: int) -> IPv4Network:
        """Carve out the next free aligned ``/prefix_len`` sub-prefix."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"invalid prefix length: {prefix_len!r}")
        size = 1 << (32 - prefix_len)
        for i, parent in enumerate(self._parents):
            if prefix_len < parent.prefixlen:
                continue  # request larger than this parent
            cursor = self._cursors[i]
            # Align the cursor up to the allocation size.
            aligned = (cursor + size - 1) // size * size
            end = int(parent.network_address) + parent.num_addresses
            if aligned + size <= end:
                self._cursors[i] = aligned + size
                return ipaddress.ip_network((aligned, prefix_len))
        raise AddressPoolExhaustedError(f"no /{prefix_len} left in pool")

    def remaining_addresses(self) -> int:
        """Total unallocated addresses across all parents (upper bound)."""
        total = 0
        for parent, cursor in zip(self._parents, self._cursors):
            end = int(parent.network_address) + parent.num_addresses
            total += max(0, end - cursor)
        return total
