"""RIR delegation registry and Team-Cymru-style whois lookup.

The paper learns each ground-truth address's RIR "from querying Team Cymru
whois database" (§2.3.3).  This module provides that whole path:

* :class:`DelegationRegistry` — the authority that hands address blocks to
  organizations within each RIR's address space and answers longest-prefix
  queries about who holds an address;
* :class:`TeamCymruWhois` — the query front-end with the record shape the
  real ``whois.cymru.com`` bulk interface returns (ASN, BGP prefix, country
  code, registry).

Registered country is an *organizational* attribute: a multinational
carrier's ARIN block is registered in the US even when the addressed
router sits in Amsterdam.  Geolocation databases that fall back on
registry data inherit exactly this bias — the mechanism behind the
paper's §5.2.3 ARIN case study.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.geo.rir import RIR
from repro.net.ip import (
    IPv4Address,
    IPv4Network,
    PrefixPool,
    parse_address,
    parse_network,
)


class UnallocatedAddressError(LookupError):
    """Raised when an address is not covered by any delegation."""


#: Top-level IPv4 space each RIR administers in the simulation.  The split
#: mirrors the real IANA /8 ledger's proportions: ARIN and RIPE NCC hold
#: the lion's share, APNIC a large chunk, LACNIC and AFRINIC less.
RIR_PARENT_BLOCKS: dict[RIR, tuple[str, ...]] = {
    RIR.ARIN: ("63.0.0.0/8", "64.0.0.0/8", "65.0.0.0/8", "66.0.0.0/8", "96.0.0.0/8"),
    RIR.RIPENCC: ("77.0.0.0/8", "78.0.0.0/8", "79.0.0.0/8", "80.0.0.0/8", "193.0.0.0/8"),
    RIR.APNIC: ("101.0.0.0/8", "110.0.0.0/8", "111.0.0.0/8", "202.0.0.0/8"),
    RIR.LACNIC: ("177.0.0.0/8", "179.0.0.0/8", "200.0.0.0/8"),
    RIR.AFRINIC: ("41.0.0.0/8", "102.0.0.0/8", "105.0.0.0/8"),
}


@dataclass(frozen=True, slots=True)
class Delegation:
    """One RIR allocation: a prefix held by an organization."""

    prefix: IPv4Network
    rir: RIR
    asn: int
    registered_country: str
    organization: str

    def __contains__(self, address: IPv4Address | str | int) -> bool:
        return parse_address(address) in self.prefix


@dataclass(frozen=True, slots=True)
class WhoisRecord:
    """The answer shape of a Team-Cymru-style bulk whois query."""

    address: IPv4Address
    asn: int
    bgp_prefix: IPv4Network
    country: str
    registry: RIR
    organization: str

    def as_pipe_row(self) -> str:
        """Render like the real ``whois.cymru.com`` verbose output."""
        return (
            f"{self.asn:<7}| {self.address!s:<16}| {self.bgp_prefix!s:<19}| "
            f"{self.country} | {self.registry.value.lower():<8}| {self.organization}"
        )


class DelegationRegistry:
    """Allocates prefixes to organizations and answers coverage queries."""

    def __init__(self, parent_blocks: dict[RIR, tuple[str, ...]] | None = None):
        blocks = parent_blocks if parent_blocks is not None else RIR_PARENT_BLOCKS
        if set(blocks) != set(RIR):
            missing = set(RIR) - set(blocks)
            raise ValueError(f"parent blocks missing for: {sorted(r.value for r in missing)}")
        self._pools = {
            rir: PrefixPool([parse_network(p) for p in prefixes])
            for rir, prefixes in blocks.items()
        }
        # Delegations sorted by network start for bisect lookup.  Pools never
        # overlap, so sorted order is also interval order.
        self._starts: list[int] = []
        self._delegations: list[Delegation] = []

    @classmethod
    def from_delegations(cls, delegations: list[Delegation]) -> "DelegationRegistry":
        """Rebuild a registry from previously-recorded delegations.

        Used when loading released study artifacts: the reconstructed
        registry answers :meth:`lookup`/:meth:`rir_of` exactly as the
        original did, but cannot :meth:`allocate` further space (it has no
        authority over the free pools).  Delegations must not overlap.
        """
        registry = cls()
        ordered = sorted(delegations, key=lambda d: int(d.prefix.network_address))
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.prefix.overlaps(later.prefix):
                raise ValueError(
                    f"overlapping delegations: {earlier.prefix} and {later.prefix}"
                )
        registry._starts = [int(d.prefix.network_address) for d in ordered]
        registry._delegations = ordered
        registry._pools = None  # read-only: allocation authority not restored
        return registry

    def allocate(
        self,
        rir: RIR,
        *,
        asn: int,
        registered_country: str,
        organization: str,
        prefix_len: int = 20,
    ) -> Delegation:
        """Delegate the next free ``/prefix_len`` in ``rir``'s space."""
        if self._pools is None:
            raise RuntimeError(
                "this registry was rebuilt from recorded delegations and is read-only"
            )
        prefix = self._pools[rir].allocate(prefix_len)
        delegation = Delegation(prefix, rir, asn, registered_country.upper(), organization)
        start = int(prefix.network_address)
        index = bisect.bisect_left(self._starts, start)
        self._starts.insert(index, start)
        self._delegations.insert(index, delegation)
        return delegation

    def lookup(self, address: IPv4Address | str | int) -> Delegation:
        """The delegation covering ``address`` (they never overlap)."""
        addr = int(parse_address(address))
        index = bisect.bisect_right(self._starts, addr) - 1
        if index >= 0:
            delegation = self._delegations[index]
            if addr < int(delegation.prefix.network_address) + delegation.prefix.num_addresses:
                return delegation
        raise UnallocatedAddressError(str(parse_address(address)))

    def rir_of(self, address: IPv4Address | str | int) -> RIR:
        """Shorthand for ``lookup(address).rir``."""
        return self.lookup(address).rir

    def delegations(self) -> tuple[Delegation, ...]:
        """All delegations in address order."""
        return tuple(self._delegations)

    def __len__(self) -> int:
        return len(self._delegations)


#: Default per-service memo capacity.  The paper's ground truth is ~16.6 K
#: addresses; 64 K entries memoises every address the study queries while
#: still bounding memory for adversarial workloads.
DEFAULT_WHOIS_CACHE_SIZE = 65536


class TeamCymruWhois:
    """IP→ASN/RIR mapping service over a delegation registry.

    Models the interface of the Team Cymru whois database the paper used:
    callers submit addresses, the service answers with origin ASN, covering
    BGP prefix, registered country, and delegating registry.

    Successful answers are memoised in a bounded LRU (delegations are
    immutable, so entries never go stale): the accuracy-by-RIR split and
    the ARIN case study re-query the same ground-truth addresses, and the
    repeats now cost one cache probe instead of a registry bisect.
    Unallocated addresses are *not* cached — every failing query still
    raises (and counts) exactly as before.  ``whois.queries`` counts all
    calls, hits included; hits additionally count ``whois.cache_hits``.

    **Thread-safety (audited for the concurrent enrichment workers).**
    ``lookup`` is safe to call from many threads: the LRU memo is an
    internally-locked :class:`~repro.serve.cache.LruCache` (every
    get/put/counter mutation happens under its lock), the delegation
    registry is immutable after construction, and the metrics registry
    locks its own counters.  Worst case under contention is a benign
    duplicate compute — two threads miss the same address, both bisect
    the registry, both ``put`` the identical immutable record — never a
    torn record or a lost counter.  The hammer regression test
    (``tests/net/test_whois_hammer.py``) drives this with 8 threads over
    a deliberately tiny, eviction-heavy cache.
    """

    def __init__(
        self,
        registry: DelegationRegistry,
        metrics=None,
        *,
        cache_size: int = DEFAULT_WHOIS_CACHE_SIZE,
    ):
        self._registry = registry
        self._metrics = metrics
        if cache_size > 0:
            # Deferred import: repro.serve pulls in repro.core at package
            # import time, which (transitively) loads this module.
            from repro.serve.cache import LruCache

            self._cache = LruCache(cache_size)
        else:
            self._cache = None

    def attach_metrics(self, metrics) -> None:
        """Emit ``whois.*`` counters into ``metrics`` on every query.

        Pass ``None`` to detach and restore the uninstrumented path.
        """
        self._metrics = metrics

    def cache_clear(self) -> None:
        """Drop every memoised answer (a no-op with the cache disabled)."""
        if self._cache is not None:
            self._cache.clear()

    def lookup(self, address: IPv4Address | str | int) -> WhoisRecord:
        """Resolve one address to its origin ASN, prefix, country, and RIR."""
        addr = parse_address(address)
        if self._metrics is not None:
            self._metrics.inc("whois.queries")
        cache = self._cache
        if cache is not None:
            try:
                record = cache.get(addr)
            except KeyError:
                pass
            else:
                if self._metrics is not None:
                    self._metrics.inc("whois.cache_hits")
                return record
        try:
            delegation = self._registry.lookup(addr)
        except UnallocatedAddressError:
            if self._metrics is not None:
                self._metrics.inc("whois.unallocated")
            raise
        record = WhoisRecord(
            address=addr,
            asn=delegation.asn,
            bgp_prefix=delegation.prefix,
            country=delegation.registered_country,
            registry=delegation.rir,
            organization=delegation.organization,
        )
        if cache is not None:
            cache.put(addr, record)
        return record

    def bulk_lookup(self, addresses) -> list[WhoisRecord]:
        """Bulk query, mirroring the netcat bulk mode of the real service."""
        if self._metrics is not None:
            self._metrics.inc("whois.bulk_queries")
        return [self.lookup(address) for address in addresses]
