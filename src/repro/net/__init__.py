"""Addressing and registry substrate: IPv4 helpers, ASes, RIR delegations."""

from repro.net.asn import ASRole, AutonomousSystem
from repro.net.ip import (
    AddressPoolExhaustedError,
    IPv4Address,
    IPv4Network,
    PrefixPool,
    block_of,
    hosts_in,
    nth_address,
    parse_address,
    parse_network,
)
from repro.net.registry import (
    RIR_PARENT_BLOCKS,
    Delegation,
    DelegationRegistry,
    TeamCymruWhois,
    UnallocatedAddressError,
    WhoisRecord,
)

__all__ = [
    "ASRole",
    "AutonomousSystem",
    "AddressPoolExhaustedError",
    "IPv4Address",
    "IPv4Network",
    "PrefixPool",
    "block_of",
    "hosts_in",
    "nth_address",
    "parse_address",
    "parse_network",
    "RIR_PARENT_BLOCKS",
    "Delegation",
    "DelegationRegistry",
    "TeamCymruWhois",
    "UnallocatedAddressError",
    "WhoisRecord",
]
