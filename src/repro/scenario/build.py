"""Scenario assembly: world → measurements → ground truth → databases.

:func:`build_scenario` is the reproduction's front door.  It performs, in
order, everything the paper's data section describes:

1. build the (synthetic) Internet;
2. run the Ark-style collection campaign → the Ark-topo-router dataset;
3. take an rDNS snapshot and build the DNS-based ground truth via DRoP;
4. deploy Atlas-like probes, run built-in measurements, and extract the
   RTT-proximity ground truth with both §3.2 probe filters;
5. generate the four database snapshots from the calibrated vendor
   profiles.

Every step is seeded from the scenario seed, so a scenario is a pure
function of its configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from repro.atlas.measurements import (
    BuiltinMeasurement,
    run_builtin_measurements,
    select_builtin_targets,
)
from repro.core.frame import LookupFrame
from repro.atlas.probes import AtlasProbe, deploy_probes
from repro.dns.drop import DropEngine
from repro.dns.hints import HintDictionary
from repro.dns.hostnames import HostnameFactory
from repro.dns.rdns import RdnsService
from repro.geodb.database import GeoDatabase
from repro.geodb.generator import SnapshotGenerator
from repro.groundtruth.dnsbased import DnsGroundTruthResult, build_dns_ground_truth
from repro.groundtruth.record import GroundTruthSet, merge_ground_truth
from repro.groundtruth.rttproximity import RttProximityResult, build_rtt_ground_truth
from repro.net.ip import IPv4Address
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NOOP_TRACER, NoopTracer, Tracer
from repro.scenario.config import ScenarioConfig
from repro.topology.ark import ArkMonitor, ArkTopoDataset, collect_topology, place_monitors
from repro.topology.builder import SyntheticInternet, TopologyBuilder
from repro.topology.traceroute import TracerouteEngine


@dataclass(frozen=True, slots=True)
class Scenario:
    """A fully-assembled study input set."""

    config: ScenarioConfig
    internet: SyntheticInternet
    hints: HintDictionary
    hostname_factory: HostnameFactory
    rdns: RdnsService
    drop: DropEngine
    monitors: tuple[ArkMonitor, ...]
    ark_dataset: ArkTopoDataset
    probes: tuple[AtlasProbe, ...]
    atlas_targets: tuple[IPv4Address, ...]
    measurements: tuple[BuiltinMeasurement, ...]
    dns_ground_truth: DnsGroundTruthResult
    rtt_ground_truth: RttProximityResult
    databases: Mapping[str, GeoDatabase]
    #: Shared columnar resolution of the study's address pool against
    #: every database; ``None`` unless built with ``build_frame=True``.
    frame: LookupFrame | None = None

    @property
    def ground_truth(self) -> GroundTruthSet:
        """The merged 'Table 1' ground truth (DNS precedence on overlap)."""
        return merge_ground_truth(
            self.dns_ground_truth.dataset, self.rtt_ground_truth.dataset
        )

    def lookup_frame(self, *, workers: int | None = None) -> LookupFrame:
        """The scenario's lookup frame: the prebuilt one, or a fresh build.

        The pool matches what :class:`~repro.core.pipeline.RouterGeolocationStudy`
        resolves — Ark interface addresses plus merged ground truth.
        Scenarios are frozen, so an on-demand build is *not* cached; pass
        ``build_frame=True`` to :func:`build_scenario` to share one.
        """
        if self.frame is not None:
            return self.frame
        return LookupFrame.build(
            self.databases,
            [*self.ark_dataset.addresses, *self.ground_truth.addresses()],
            workers=workers,
        )

    def describe(self) -> str:
        """A multi-line inventory of the scenario's datasets."""
        return (
            f"{self.internet.describe()}\n"
            f"Ark: {len(self.monitors)} monitors, {len(self.ark_dataset)} interface"
            f" addresses from {self.ark_dataset.traces_run} traces\n"
            f"rDNS: {len(self.rdns)} PTR records\n"
            f"Atlas: {len(self.probes)} probes × {len(self.atlas_targets)} targets"
            f" → {len(self.measurements)} measurements\n"
            f"Ground truth: {len(self.dns_ground_truth.dataset)} DNS-based +"
            f" {len(self.rtt_ground_truth.dataset)} RTT-proximity"
            f" = {len(self.ground_truth)} merged\n"
            f"Databases: {', '.join(sorted(self.databases))}"
        )


def build_scenario(
    seed: int = 2016,
    scale: float = 1.0,
    config: ScenarioConfig | None = None,
    *,
    tracer: Tracer | NoopTracer | None = None,
    metrics: MetricsRegistry | None = None,
    build_frame: bool = False,
    frame_workers: int | None = None,
) -> Scenario:
    """Assemble a scenario (see module docstring for the steps).

    Either pass a full ``config`` or the two common knobs.  ``scale=1.0``
    builds a ~35 K-interface world in under a minute; tests typically use
    ``scale≈0.05``.

    ``tracer`` wraps each build phase in a timing span and ``metrics``
    receives ``scenario.*`` dataset-size counters; both default to the
    zero-cost no-ops, leaving the build byte-identical to uninstrumented
    runs.

    ``build_frame=True`` additionally resolves the study's address pool
    into a shared :class:`~repro.core.frame.LookupFrame` (optionally with
    ``frame_workers`` processes) so the pipeline starts with zero lookup
    work; the frame rides on :attr:`Scenario.frame`.
    """
    if config is None:
        config = ScenarioConfig(seed=seed, scale=scale)
    if tracer is None:
        tracer = NOOP_TRACER

    with tracer.span("build_scenario", seed=config.seed, scale=config.scale):
        with tracer.span("topology") as span:
            internet = TopologyBuilder(config.resolved_topology()).build()
            span.count(internet.interface_count())
        hints = HintDictionary(internet.gazetteer)
        factory = HostnameFactory(hints)

        with tracer.span("rdns") as span:
            rng_rdns = random.Random(config.seed + 1)
            rdns = RdnsService.build(internet, factory, rng_rdns, config.rdns)
            drop = DropEngine.with_ground_truth_rules(hints)
            span.count(len(rdns))

        # Ark campaign (§2.1).
        with tracer.span("ark_campaign") as span:
            rng_ark = random.Random(config.seed + 2)
            monitors = place_monitors(internet, config.scaled_monitors(), rng_ark)
            ark_engine = TracerouteEngine(internet, rng_ark, routing=config.routing)
            ark_dataset = collect_topology(
                internet, monitors, config.scaled_ark_targets(), rng_ark,
                engine=ark_engine,
            )
            span.count(len(ark_dataset))
            span.set(monitors=len(monitors), traces=ark_dataset.traces_run)

        # Atlas campaign (§2.3.2).
        with tracer.span("atlas_campaign") as span:
            rng_atlas = random.Random(config.seed + 3)
            probes = deploy_probes(
                internet,
                config.scaled_probes(),
                rng_atlas,
                model=config.probe_location_model,
            )
            atlas_targets = select_builtin_targets(
                internet, config.scaled_atlas_targets(), rng_atlas
            )
            atlas_engine = TracerouteEngine(
                internet,
                rng_atlas,
                hop_loss_rate=0.02,
                last_mile_rtt_ms=(0.06, 0.35),
                routing=config.routing,
            )
            measurements = tuple(
                run_builtin_measurements(
                    internet, probes, atlas_targets, rng_atlas, engine=atlas_engine
                )
            )
            span.count(len(measurements))
            span.set(probes=len(probes), targets=len(atlas_targets))

        # Ground truth (§2.3).
        with tracer.span("ground_truth") as span:
            dns_result = build_dns_ground_truth(ark_dataset.addresses, rdns, drop)
            rtt_result = build_rtt_ground_truth(
                measurements, probes, config.rtt_proximity
            )
            span.count(len(dns_result.dataset) + len(rtt_result.dataset))
            span.set(dns=len(dns_result.dataset), rtt=len(rtt_result.dataset))

        # Database snapshots.
        with tracer.span("databases") as span:
            generator = SnapshotGenerator(
                internet, config.seed + config.database_seed_offset, rdns=rdns
            )
            databases = generator.generate_paper_set()
            span.count(sum(len(database) for database in databases.values()))

        frame = None
        if build_frame:
            frame = LookupFrame.build(
                databases,
                [
                    *ark_dataset.addresses,
                    *merge_ground_truth(
                        dns_result.dataset, rtt_result.dataset
                    ).addresses(),
                ],
                workers=frame_workers,
                tracer=tracer,
                metrics=metrics,
            )

    if metrics is not None:
        metrics.inc("scenario.interfaces", internet.interface_count())
        metrics.inc("scenario.rdns_records", len(rdns))
        metrics.inc("scenario.ark_addresses", len(ark_dataset))
        metrics.inc("scenario.probes", len(probes))
        metrics.inc("scenario.measurements", len(measurements))
        metrics.inc("scenario.ground_truth_dns", len(dns_result.dataset))
        metrics.inc("scenario.ground_truth_rtt", len(rtt_result.dataset))
        for name, database in databases.items():
            metrics.inc("scenario.database_entries", len(database), database=name)
        for database in databases.values():
            database.attach_metrics(metrics)
        internet.whois.attach_metrics(metrics)

    return Scenario(
        config=config,
        internet=internet,
        hints=hints,
        hostname_factory=factory,
        rdns=rdns,
        drop=drop,
        monitors=monitors,
        ark_dataset=ark_dataset,
        probes=probes,
        atlas_targets=atlas_targets,
        measurements=measurements,
        dns_ground_truth=dns_result,
        rtt_ground_truth=rtt_result,
        databases=databases,
        frame=frame,
    )


@dataclass(frozen=True, slots=True)
class ScaleTier:
    """A million-interface serving build: world, indexes, answer plane.

    The streaming counterpart of a :class:`Scenario` restricted to what
    the serving stack needs — no Ark/Atlas campaigns, no ground truth,
    no :class:`GeoDatabase` objects.  ``stats`` records the build's
    shape and cost (counts, per-phase seconds, peak RSS) for the
    ``scale_tier`` bench block.
    """

    world: "StreamedWorld"  # noqa: F821 - imported lazily in build_scale_tier
    indexes: Mapping[str, "CompiledIndex"]  # noqa: F821
    plane: "AnswerPlane"  # noqa: F821
    stats: Mapping[str, object]


def build_scale_tier(
    interfaces: int = 1_000_000,
    seed: int = 2016,
    *,
    config: "StreamTierConfig | None" = None,  # noqa: F821
    tracer: Tracer | NoopTracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> ScaleTier:
    """Compile the full serving stack for a streamed 1M+-interface world.

    The memory-bounded analogue of ``build_scenario`` → ``CompiledIndex``
    → ``compile_plane``: the world is run arrays
    (:class:`~repro.topology.stream.StreamedWorld`), database entries
    stream straight from :class:`StreamingSnapshotGenerator` into
    :meth:`CompiledIndex.compile_entries` without a materialized
    :class:`GeoDatabase` in between, and only the compiled interval
    arrays survive.  Seeding follows the scenario convention (database
    streams at ``seed + database_seed_offset``), so a tier is a pure
    function of ``(interfaces, seed)``.
    """
    import resource
    import time

    from repro.geodb.generator import StreamingSnapshotGenerator
    from repro.geodb.vendors import (
        GENERATED_PROFILES,
        MAXMIND_GEOLITE_DERIVATION,
        MAXMIND_PAID,
    )
    from repro.serve.index import CompiledIndex
    from repro.serve.plane import compile_plane
    from repro.topology.stream import StreamTierConfig, StreamedWorld

    if config is None:
        config = StreamTierConfig(seed=seed, interfaces=interfaces)
    if tracer is None:
        tracer = NOOP_TRACER

    phases: dict[str, float] = {}
    with tracer.span("build_scale_tier", interfaces=config.interfaces, seed=config.seed):
        with tracer.span("stream_world") as span:
            t0 = time.perf_counter()
            world = StreamedWorld.build(config)
            phases["world_s"] = time.perf_counter() - t0
            span.count(world.interface_count)

        generator = StreamingSnapshotGenerator(
            world, config.seed + ScenarioConfig().database_seed_offset
        )
        indexes: dict[str, CompiledIndex] = {}
        vendor_stats: dict[str, dict[str, int]] = {}
        for profile in GENERATED_PROFILES:
            with tracer.span("stream_compile", vendor=profile.name) as span:
                t0 = time.perf_counter()
                index = CompiledIndex.compile_entries(
                    profile.name, generator.iter_entries(profile)
                )
                phases[f"compile_{profile.vendor_key}_s"] = time.perf_counter() - t0
                span.count(index.interval_count)
            indexes[profile.name] = index
            vendor_stats[profile.name] = {
                "entries": index.source_entries,
                "intervals": index.interval_count,
            }
        derivation = MAXMIND_GEOLITE_DERIVATION
        with tracer.span("stream_compile", vendor=derivation.name) as span:
            t0 = time.perf_counter()
            index = CompiledIndex.compile_entries(
                derivation.name,
                generator.iter_derived(
                    generator.iter_entries(MAXMIND_PAID), derivation
                ),
            )
            phases["compile_derived_s"] = time.perf_counter() - t0
            span.count(index.interval_count)
        indexes[derivation.name] = index
        vendor_stats[derivation.name] = {
            "entries": index.source_entries,
            "intervals": index.interval_count,
        }

        with tracer.span("compile_plane") as span:
            t0 = time.perf_counter()
            plane = compile_plane(indexes)
            phases["plane_s"] = time.perf_counter() - t0
            span.count(plane.interval_count)

    if metrics is not None:
        metrics.inc("scale_tier.interfaces", world.interface_count)
        metrics.inc("scale_tier.plane_intervals", plane.interval_count)
        for name, stat in vendor_stats.items():
            metrics.inc("scale_tier.entries", stat["entries"], database=name)

    stats: dict[str, object] = {
        "interfaces": world.interface_count,
        "ases": len(world.ases),
        "delegations": len(world.registry),
        "runs": world.run_count,
        "blocks": world.block_count(),
        "vendors": vendor_stats,
        "plane_intervals": plane.interval_count,
        "plane_cells": plane.cell_count,
        "phases_s": phases,
        "total_s": sum(phases.values()),
        # ru_maxrss is KB on Linux: the whole-process high-water mark,
        # the number the memory-bounded claim is judged on.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    return ScaleTier(world=world, indexes=indexes, plane=plane, stats=stats)
