"""Longitudinal churn: drifting generations served through the store.

The paper measures one epoch and argues (§5.2, via a ~50-day re-query)
that short-term drift would not change its conclusions; Gouel et al.'s
longitudinal study of a commercial feed shows that over *release
sequences* the answers churn substantially.  This scenario measures that
churn on our own serving stack, end to end through the lifecycle plane:

1. compile the scenario's four vendor snapshots and publish them as
   generation 1 of a :class:`~repro.serve.store.SnapshotStore`;
2. boot a :class:`~repro.serve.engine.ServingEngine` *from the store*
   (not from the in-memory databases) and attach a
   :class:`~repro.serve.store.StoreWatcher`;
3. for each subsequent generation, age every vendor snapshot by
   ``months_step`` (:func:`repro.geodb.diff.refresh_snapshot` — the
   re-measure/move model the diff-db command uses), publish, and drive
   one watcher poll: the running engine hot-swaps to the new generation;
4. against a fixed probe set, record what changed: the raw release diff
   per vendor (:func:`repro.geodb.diff.diff_snapshots`), the fraction of
   probe addresses whose *served* per-vendor answer changed, and how
   often the §5.1 consensus flipped its country or moved its city-level
   vote beyond the city range.

The separation between the last two is the point: a vendor can rewrite
10% of its prefix table (release churn) while the consensus barely moves
(the majority vote absorbs single-vendor drift) — or a small release can
flip consensus countries if it lands on split votes.  The report keeps
both so the relationship is measurable, and the benchmark suite persists
it into ``BENCH_pipeline.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.majority import DEFAULT_CITY_RANGE_KM
from repro.geodb.diff import diff_snapshots, refresh_snapshot
from repro.obs.metrics import MetricsRegistry

__all__ = ["LongitudinalReport", "run_longitudinal_churn"]

#: Probe addresses sampled from the Ark dataset when the caller gives none.
DEFAULT_PROBE_COUNT = 256


def _answer_key(answer) -> tuple | None:
    """A vendor answer reduced to comparable identity (None = no answer)."""
    if answer is None:
        return None
    record = answer.record
    return (
        answer.prefix,
        record.country,
        record.region,
        record.city,
        record.latitude,
        record.longitude,
    )


@dataclass(frozen=True, slots=True)
class GenerationChurn:
    """What changed between one served generation and the next."""

    generation: int
    months: float  # cumulative simulated age of this generation
    vendor_diffs: Mapping[str, Mapping[str, float]]  # release-level diff
    answer_churn: Mapping[str, float]  # served-answer change rate per vendor
    consensus_country_flips: int
    consensus_city_flips: int
    probe_count: int

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view of this step for the benchmark artifact."""
        return {
            "generation": self.generation,
            "months": round(self.months, 3),
            "vendor_diffs": {
                name: dict(diff) for name, diff in sorted(self.vendor_diffs.items())
            },
            "answer_churn": {
                name: round(rate, 6)
                for name, rate in sorted(self.answer_churn.items())
            },
            "consensus_country_flips": self.consensus_country_flips,
            "consensus_city_flips": self.consensus_city_flips,
            "probe_count": self.probe_count,
        }


@dataclass(frozen=True, slots=True)
class LongitudinalReport:
    """Churn across a published generation sequence, served via the store."""

    seed: int
    months_step: float
    probe_count: int
    steps: Sequence[GenerationChurn] = field(default_factory=tuple)
    swaps: int = 0
    rollbacks: int = 0

    def mean_answer_churn(self) -> dict[str, float]:
        """Per-vendor mean served-answer change rate across all steps."""
        totals: dict[str, list[float]] = {}
        for step in self.steps:
            for name, rate in step.answer_churn.items():
                totals.setdefault(name, []).append(rate)
        return {
            name: sum(rates) / len(rates)
            for name, rates in sorted(totals.items())
        }

    def total_consensus_flips(self) -> dict[str, int]:
        """Country and city consensus flips summed over every step."""
        return {
            "country": sum(s.consensus_country_flips for s in self.steps),
            "city": sum(s.consensus_city_flips for s in self.steps),
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view of the whole run for ``BENCH_pipeline.json``."""
        return {
            "seed": self.seed,
            "months_step": self.months_step,
            "probe_count": self.probe_count,
            "generations": 1 + len(self.steps),
            "swaps": self.swaps,
            "rollbacks": self.rollbacks,
            "steps": [step.to_dict() for step in self.steps],
            "mean_answer_churn": {
                name: round(rate, 6)
                for name, rate in self.mean_answer_churn().items()
            },
            "consensus_flips": self.total_consensus_flips(),
        }

    def render(self) -> str:
        """A human-readable churn table, one line per generation step."""
        lines = [
            f"longitudinal churn: {1 + len(self.steps)} generations,"
            f" {self.months_step:g} months/step, {self.probe_count} probes,"
            f" {self.swaps} hot swaps"
        ]
        for step in self.steps:
            churn = ", ".join(
                f"{name}={rate:.1%}"
                for name, rate in sorted(step.answer_churn.items())
            )
            lines.append(
                f"  gen {step.generation} (+{self.months_step:g}mo):"
                f" answers changed {churn};"
                f" consensus flips country={step.consensus_country_flips}"
                f" city={step.consensus_city_flips}"
            )
        flips = self.total_consensus_flips()
        mean = self.mean_answer_churn()
        overall = sum(mean.values()) / len(mean) if mean else 0.0
        lines.append(
            f"  mean per-vendor answer churn {overall:.1%};"
            f" total consensus flips country={flips['country']}"
            f" city={flips['city']}"
        )
        return "\n".join(lines)


def run_longitudinal_churn(
    scenario,
    store_root,
    *,
    generations: int = 4,
    months_step: float = 6.0,
    seed: int = 2016,
    probes: Sequence[int] | None = None,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> LongitudinalReport:
    """Publish ``generations`` drifting releases and measure served churn.

    Every generation flows through the real lifecycle: published to the
    store on disk, validated and hot-swapped into a live engine by a
    :class:`~repro.serve.store.StoreWatcher` (driven synchronously here
    — the HTTP server drives the identical code from its poll thread).
    Requires ``generations >= 2`` (churn needs at least one transition).
    """
    if generations < 2:
        raise ValueError(f"need at least 2 generations: {generations!r}")
    # Imported here so the scenario package keeps no hard serve dependency
    # at import time (mirrors how the CLI defers its serve imports).
    from repro.serve.engine import ServingEngine
    from repro.serve.index import CompiledIndex
    from repro.serve.plane import compile_plane
    from repro.serve.store import SnapshotStore, StoreWatcher

    if probes is None:
        addresses = scenario.ark_dataset.addresses[:DEFAULT_PROBE_COUNT]
        probes = [int(address) for address in addresses]
    else:
        probes = [int(address) for address in probes]
    if not probes:
        raise ValueError("the probe set must not be empty")

    def compile_all(databases):
        indexes = {
            name: CompiledIndex.compile(database)
            for name, database in sorted(databases.items())
        }
        return indexes, compile_plane(indexes, city_range_km=city_range_km)

    store = SnapshotStore(store_root)
    databases = dict(scenario.databases)
    indexes, plane = compile_all(databases)
    store.publish(
        indexes, plane, metadata={"seed": seed, "months": 0.0, "step": 1}
    )

    # Boot from the store — the round-trip through .rgix/.rgpl bytes and
    # manifest digests is part of what this scenario exercises.
    record, loaded_indexes, loaded_plane = store.load(store.current_id())
    metrics = MetricsRegistry()
    engine = ServingEngine(
        loaded_indexes,
        plane=loaded_plane,
        metrics=metrics,
        city_range_km=city_range_km,
        generation_id=record.generation,
        generation_source="store",
    )
    watcher = StoreWatcher(
        store,
        engine,
        interval_s=3600.0,  # driven synchronously; the thread never starts
        canary_addresses=probes,
        metrics=metrics,
    )

    def observe() -> tuple[dict[int, dict[str, tuple | None]], dict[int, tuple]]:
        answers = {}
        consensus = {}
        for addr in probes:
            flat = engine.lookup(addr)
            answers[addr] = {
                name: _answer_key(answer) for name, answer in flat.items()
            }
            vote = engine.consensus(addr)
            consensus[addr] = (vote.country, vote.location)
        return answers, consensus

    try:
        previous_answers, previous_consensus = observe()
        steps: list[GenerationChurn] = []
        months = 0.0
        for step in range(2, generations + 1):
            months += months_step
            aged = {
                name: refresh_snapshot(
                    database,
                    scenario.internet.gazetteer,
                    months=months_step,
                    seed=seed + step,
                )
                for name, database in sorted(databases.items())
            }
            vendor_diffs = {}
            for name in sorted(databases):
                diff = diff_snapshots(
                    databases[name], aged[name], city_range_km=city_range_km
                )
                vendor_diffs[name] = {
                    "unchanged": diff.unchanged,
                    "nudged": diff.nudged,
                    "moved": diff.moved,
                    "resolution_changed": diff.resolution_changed,
                    "moved_rate": round(diff.moved_rate, 6),
                }
            databases = aged
            indexes, plane = compile_all(databases)
            record = store.publish(
                indexes,
                plane,
                metadata={"seed": seed, "months": months, "step": step},
            )
            outcome = watcher.poll_once()
            if outcome != "swapped":
                raise RuntimeError(
                    f"generation {record.generation} failed to swap:"
                    f" {outcome} ({watcher.last_error})"
                )
            if engine.generation_id != record.generation:
                raise RuntimeError(
                    f"engine serves generation {engine.generation_id}"
                    f" after publishing {record.generation}"
                )

            answers, consensus = observe()
            answer_churn = {}
            for name in sorted(engine.vendor_names()):
                changed = sum(
                    1
                    for addr in probes
                    if answers[addr][name] != previous_answers[addr][name]
                )
                answer_churn[name] = changed / len(probes)
            country_flips = 0
            city_flips = 0
            for addr in probes:
                before_country, before_location = previous_consensus[addr]
                after_country, after_location = consensus[addr]
                if before_country != after_country:
                    country_flips += 1
                if (before_location is None) != (after_location is None):
                    city_flips += 1
                elif (
                    before_location is not None
                    and before_location.distance_km(after_location)
                    > city_range_km
                ):
                    city_flips += 1
            steps.append(
                GenerationChurn(
                    generation=record.generation,
                    months=months,
                    vendor_diffs=vendor_diffs,
                    answer_churn=answer_churn,
                    consensus_country_flips=country_flips,
                    consensus_city_flips=city_flips,
                    probe_count=len(probes),
                )
            )
            previous_answers, previous_consensus = answers, consensus

        info = engine.generation_info()
        return LongitudinalReport(
            seed=seed,
            months_step=months_step,
            probe_count=len(probes),
            steps=tuple(steps),
            swaps=int(info["swaps"]),
            rollbacks=int(info["rollbacks"]),
        )
    finally:
        engine.close()
