"""Study artifact release and reload.

A measurement paper's reproducibility package is a directory of datasets,
not a simulator: the interface address list, the ground truth, the
database snapshots, the raw measurements, and the registry mapping needed
to bucket addresses by RIR.  This module writes exactly that package for
a scenario — and reloads it into a ready-to-run
:class:`~repro.core.pipeline.RouterGeolocationStudy`, no synthetic world
required.  (This mirrors how the paper's own study could be re-run today
from its IMPACT ground-truth release plus archived database snapshots.)

Layout of a release directory::

    ark_addresses.txt        one interface address per line
    ground_truth_dns.csv     IMPACT-style ground-truth CSV (DNS-based)
    ground_truth_rtt.csv     IMPACT-style ground-truth CSV (RTT-proximity)
    delegations.csv          prefix,rir,asn,registered_country,organization
    measurements.jsonl       RIPE-Atlas-shaped traceroute results
    probes.json              probe metadata (id, reported location/country)
    databases/<name>.csv     GeoLite2-style CSV per database snapshot
    MANIFEST.txt             inventory with row counts
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from dataclasses import dataclass
from typing import Mapping

from repro.atlas.measurements import parse_json_lines, to_json_lines
from repro.atlas.probes import ReleasedProbe
from repro.core.pipeline import RouterGeolocationStudy
from repro.geo.gazetteer import Gazetteer
from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase
from repro.geodb.formats import export_geolite_csv, import_geolite_csv
from repro.groundtruth.io import export_ground_truth_csv, import_ground_truth_csv
from repro.groundtruth.record import GroundTruthSet
from repro.net.ip import IPv4Address, parse_address, parse_network
from repro.net.registry import Delegation, DelegationRegistry, TeamCymruWhois

_DELEGATION_HEADER = ("prefix", "rir", "asn", "registered_country", "organization")


class ArtifactError(ValueError):
    """Raised when a release directory is malformed."""


def export_scenario_artifacts(scenario, directory: str | pathlib.Path) -> pathlib.Path:
    """Write a scenario's release package to ``directory``."""
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)

    addresses = "\n".join(str(a) for a in scenario.ark_dataset.addresses)
    (root / "ark_addresses.txt").write_text(addresses + "\n")

    (root / "ground_truth_dns.csv").write_text(
        export_ground_truth_csv(scenario.dns_ground_truth.dataset)
    )
    (root / "ground_truth_rtt.csv").write_text(
        export_ground_truth_csv(scenario.rtt_ground_truth.dataset)
    )

    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_DELEGATION_HEADER)
    for delegation in scenario.internet.registry.delegations():
        writer.writerow(
            (
                str(delegation.prefix),
                delegation.rir.value,
                delegation.asn,
                delegation.registered_country,
                delegation.organization,
            )
        )
    (root / "delegations.csv").write_text(buffer.getvalue())

    (root / "measurements.jsonl").write_text(
        to_json_lines(scenario.measurements) + "\n"
    )

    probes_payload = [
        {
            "prb_id": probe.probe_id,
            "latitude": probe.reported_location.lat,
            "longitude": probe.reported_location.lon,
            "country_code": probe.reported_country,
        }
        for probe in scenario.probes
    ]
    (root / "probes.json").write_text(json.dumps(probes_payload, indent=1) + "\n")

    databases_dir = root / "databases"
    databases_dir.mkdir(exist_ok=True)
    for name, database in scenario.databases.items():
        (databases_dir / f"{name}.csv").write_text(export_geolite_csv(database))

    manifest = [
        f"ark_addresses: {len(scenario.ark_dataset)}",
        f"ground_truth_dns: {len(scenario.dns_ground_truth.dataset)}",
        f"ground_truth_rtt: {len(scenario.rtt_ground_truth.dataset)}",
        f"delegations: {len(scenario.internet.registry)}",
        f"measurements: {len(scenario.measurements)}",
        f"probes: {len(scenario.probes)}",
        f"databases: {', '.join(sorted(scenario.databases))}",
        f"seed: {scenario.config.seed}",
        f"scale: {scenario.config.scale}",
    ]
    (root / "MANIFEST.txt").write_text("\n".join(manifest) + "\n")
    return root


@dataclass(frozen=True, slots=True)
class StudyArtifacts:
    """A reloaded release package — everything the evaluation needs."""

    ark_addresses: tuple[IPv4Address, ...]
    dns_ground_truth: GroundTruthSet
    rtt_ground_truth: GroundTruthSet
    registry: DelegationRegistry
    databases: Mapping[str, GeoDatabase]

    def study(self, gazetteer: Gazetteer | None = None) -> RouterGeolocationStudy:
        """A ready-to-run study over the released data."""
        return RouterGeolocationStudy(
            databases=self.databases,
            ark_addresses=self.ark_addresses,
            dns_ground_truth=self.dns_ground_truth,
            rtt_ground_truth=self.rtt_ground_truth,
            whois=TeamCymruWhois(self.registry),
            gazetteer=gazetteer if gazetteer is not None else Gazetteer.default(),
        )


def _load_delegations(path: pathlib.Path) -> DelegationRegistry:
    try:
        rows = list(csv.reader(io.StringIO(path.read_text())))
    except csv.Error as exc:
        raise ArtifactError(f"malformed delegations.csv: {exc}") from exc
    if not rows:
        raise ArtifactError("delegations.csv is empty")
    header = tuple(rows[0])
    if header != _DELEGATION_HEADER:
        raise ArtifactError(f"unexpected delegations header: {header!r}")
    delegations = []
    for row_number, row in enumerate(rows[1:], start=2):
        if not row:
            continue
        if len(row) != len(_DELEGATION_HEADER):
            raise ArtifactError(f"delegations.csv row {row_number}: bad width")
        prefix_s, rir_s, asn_s, country, organization = row
        try:
            delegations.append(
                Delegation(
                    prefix=parse_network(prefix_s),
                    rir=RIR(rir_s),
                    asn=int(asn_s),
                    registered_country=country,
                    organization=organization,
                )
            )
        except ValueError as exc:
            raise ArtifactError(f"delegations.csv row {row_number}: {exc}") from exc
    return DelegationRegistry.from_delegations(delegations)


def load_released_probes(path: str | pathlib.Path) -> tuple[ReleasedProbe, ...]:
    """Parse a release's ``probes.json`` into extraction-ready probes."""
    from repro.geo.coordinates import GeoPoint, InvalidCoordinateError

    try:
        payload = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"unreadable probes.json: {exc}") from exc
    if not isinstance(payload, list):
        raise ArtifactError("probes.json must be a list")
    probes = []
    for index, entry in enumerate(payload):
        try:
            probes.append(
                ReleasedProbe(
                    probe_id=int(entry["prb_id"]),
                    reported_location=GeoPoint(
                        float(entry["latitude"]), float(entry["longitude"])
                    ),
                    reported_country=str(entry["country_code"]),
                )
            )
        except (KeyError, TypeError, ValueError, InvalidCoordinateError) as exc:
            raise ArtifactError(f"probes.json entry {index}: {exc}") from exc
    return tuple(probes)


def verify_release(directory: str | pathlib.Path) -> bool:
    """Check a release package's internal consistency.

    Re-derives the RTT-proximity ground truth from the released raw
    measurements and probe metadata, and compares it against the released
    ``ground_truth_rtt.csv``.  A release that passes is self-contained:
    anyone can re-run the paper's §2.3.2/§3.2 extraction from the raw data
    and obtain exactly the published dataset.

    Raises :class:`ArtifactError` with a specific message on mismatch;
    returns ``True`` on success.
    """
    from repro.groundtruth.rttproximity import build_rtt_ground_truth

    root = pathlib.Path(directory)
    artifacts = load_study_artifacts(root)
    measurements_path = root / "measurements.jsonl"
    probes_path = root / "probes.json"
    if not measurements_path.exists() or not probes_path.exists():
        raise ArtifactError("release lacks raw measurements/probes — cannot verify")
    measurements = parse_json_lines(measurements_path.read_text())
    probes = load_released_probes(probes_path)
    rederived = build_rtt_ground_truth(measurements, probes).dataset
    published = artifacts.rtt_ground_truth
    if rederived.addresses() != published.addresses():
        missing = set(published.addresses()) - set(rederived.addresses())
        extra = set(rederived.addresses()) - set(published.addresses())
        raise ArtifactError(
            f"RTT ground truth does not re-derive: {len(missing)} missing,"
            f" {len(extra)} extra addresses"
        )
    for record in published:
        again = rederived.get(record.address)
        if again.location.distance_km(record.location) > 0.05:
            raise ArtifactError(
                f"re-derived location differs for {record.address}"
            )
        if again.country != record.country:
            raise ArtifactError(f"re-derived country differs for {record.address}")
    return True


def load_study_artifacts(directory: str | pathlib.Path) -> StudyArtifacts:
    """Reload a release package written by :func:`export_scenario_artifacts`.

    Measurements and probes are re-parsed for validity but are not needed
    to *re-run* the evaluation (they exist so the ground truth can be
    independently re-derived); the returned object carries what the
    :class:`RouterGeolocationStudy` consumes.
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise ArtifactError(f"not a directory: {root}")
    required = (
        "ark_addresses.txt",
        "ground_truth_dns.csv",
        "ground_truth_rtt.csv",
        "delegations.csv",
        "databases",
    )
    for name in required:
        if not (root / name).exists():
            raise ArtifactError(f"missing artifact: {name}")

    addresses = tuple(
        parse_address(line)
        for line in (root / "ark_addresses.txt").read_text().splitlines()
        if line.strip()
    )
    dns = import_ground_truth_csv((root / "ground_truth_dns.csv").read_text())
    rtt = import_ground_truth_csv((root / "ground_truth_rtt.csv").read_text())
    registry = _load_delegations(root / "delegations.csv")

    databases: dict[str, GeoDatabase] = {}
    for csv_path in sorted((root / "databases").glob("*.csv")):
        databases[csv_path.stem] = import_geolite_csv(
            csv_path.stem, csv_path.read_text()
        )
    if not databases:
        raise ArtifactError("release contains no database snapshots")

    # Validate the raw measurement dump if present (optional artifact).
    measurements_path = root / "measurements.jsonl"
    if measurements_path.exists():
        parse_json_lines(measurements_path.read_text(), skip_malformed=False)

    return StudyArtifacts(
        ark_addresses=addresses,
        dns_ground_truth=dns,
        rtt_ground_truth=rtt,
        registry=registry,
        databases=databases,
    )
