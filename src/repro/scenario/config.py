"""Scenario configuration: one knob-set for the whole reproduction.

A *scenario* is everything the paper's study needed: the Internet (ours is
synthetic), an Ark-style collection campaign, an rDNS snapshot, a RIPE
Atlas deployment with built-in measurements, the two ground-truth
extractions, and the four database snapshots.  ``ScenarioConfig`` collects
every parameter with paper-calibrated defaults; ``scale`` shrinks or grows
all population sizes together (the paper ran at roughly ``scale≈27`` in
this model's units — far beyond what a laptop test suite wants).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.probes import ProbeLocationModel
from repro.dns.rdns import RdnsConfig
from repro.groundtruth.rttproximity import RttProximityConfig
from repro.topology.builder import TopologyConfig


@dataclass(slots=True)
class ScenarioConfig:
    """All knobs of a scenario build."""

    seed: int = 2016
    scale: float = 1.0
    #: Ark campaign (§2.1): vantage points and per-monitor target count.
    ark_monitors: int = 30
    ark_targets_per_monitor: int = 2600
    #: Atlas deployment (§2.3.2).
    atlas_probes: int = 1400
    atlas_targets: int = 13
    #: Extraction threshold etc. for the RTT-proximity ground truth.
    rtt_proximity: RttProximityConfig = field(default_factory=RttProximityConfig)
    probe_location_model: ProbeLocationModel = field(default_factory=ProbeLocationModel)
    rdns: RdnsConfig = field(default_factory=RdnsConfig)
    #: Separate stream for database generation so topology and databases
    #: can be varied independently.
    database_seed_offset: int = 7919
    #: Routing model for every traceroute in the scenario: "latency"
    #: (baseline) or "valley-free" (Gao–Rexford policy routing).
    routing: str = "latency"
    topology: TopologyConfig | None = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive: {self.scale!r}")
        if self.ark_monitors <= 0 or self.atlas_probes <= 0:
            raise ValueError("monitor and probe counts must be positive")
        if self.routing not in ("latency", "valley-free"):
            raise ValueError(f"unknown routing mode: {self.routing!r}")

    def resolved_topology(self) -> TopologyConfig:
        """The topology config, scaled and seeded consistently."""
        base = self.topology if self.topology is not None else TopologyConfig(seed=self.seed)
        return base.scaled(self.scale)

    def scaled_ark_targets(self) -> int:
        """Per-monitor Ark target count at this scale."""
        return max(50, round(self.ark_targets_per_monitor * self.scale))

    def scaled_monitors(self) -> int:
        """Ark monitor count at this scale."""
        return max(4, round(self.ark_monitors * min(1.0, 0.4 + self.scale)))

    def scaled_probes(self) -> int:
        """Atlas probe count at this scale."""
        return max(40, round(self.atlas_probes * self.scale))

    def scaled_atlas_targets(self) -> int:
        """Atlas built-in target count at this scale."""
        return max(4, round(self.atlas_targets * min(1.0, 0.5 + self.scale)))
