"""Scenario assembly: the reproduction's end-to-end front door."""

from repro.scenario.artifacts import (
    ArtifactError,
    StudyArtifacts,
    export_scenario_artifacts,
    load_released_probes,
    load_study_artifacts,
    verify_release,
)
from repro.scenario.build import Scenario, build_scenario
from repro.scenario.config import ScenarioConfig
from repro.scenario.longitudinal import LongitudinalReport, run_longitudinal_churn

__all__ = [
    "ArtifactError",
    "LongitudinalReport",
    "StudyArtifacts",
    "export_scenario_artifacts",
    "load_released_probes",
    "load_study_artifacts",
    "run_longitudinal_churn",
    "verify_release",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
